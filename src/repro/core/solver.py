"""Optimizing solver concretization: full choice-space search.

The greedy algorithm (§3.4) commits to the first policy choice and the
backtracking search (§4.5) only re-enumerates *virtual provider*
assignments.  Real Spack eventually replaced both with an optimizing
ASP solver ("Using Answer Set Programming for HPC Dependency Solving",
PAPERS.md) because dead ends also hide behind version pins, variant
defaults, and compiler conflicts, and because "a" solution is not the
same thing as the *best* solution.  :class:`SolverConcretizer` is that
step in this codebase's model:

**Choice space.**  From the abstract request it statically derives the
decision variables: one per reachable virtual interface (which
provider), per reachable package (which declared version), per declared
boolean variant (keep or flip the default), and per reachable package's
compiler (which registered toolchain).  Index 0 of every domain means
"leave it to greedy policy" — the all-defaults assignment *is* the
greedy concretization — so the search explores *deviations* from
policy, most-preferred first.

**Evaluation.**  Every assignment is complete: forced choices are merged
into the abstract spec (the provider-injection technique the
backtracking concretizer introduced, generalized to ``@version``,
``+variant`` and ``%compiler`` constraints) and one greedy fixed-point
pass fills in everything unforced.  One assignment = one attempt.

**Conflict-driven nogood learning.**  When a pass fails, the typed
error's message names the packages involved; the solver intersects that
set with each variable's static *influence closure* (the packages a
choice can possibly constrain) and records the minimal conflicting
assignment prefix — the influencing variables at their failing values —
as a *nogood*.  Any later assignment that agrees with a nogood on every
recorded variable is skipped without a concretization pass; those skips
are the search's backjumps (the whole conflicting region of the
enumeration is jumped over at once).

**Branch and bound.**  Assignments are enumerated best-first by a lower
bound on the weighted objective (below).  Every evaluated success is
scored exactly; the incumbent is replaced only by a strictly better
score.  The loop stops when the cheapest unexplored lower bound is no
better than the incumbent — at that point every unexplored assignment
is provably no better, so the solution returned is the best-scoring
consistent one, not merely the first found.  (With an exhausted attempt
budget the incumbent is still returned, flagged not-proven via
``last_proven_optimal``.)  Constraints in the *request itself* (a
``%compiler`` pin, an ``@version`` range, a ``+variant`` flip) force
the same minimum cost on every solution; that floor is charged to the
root bound up front and deducted from the affected variables' cost
vectors, so a pinned request converges as fast as a bare one instead
of exploring every deviation cheaper than the unavoidable cost.

**Objective** (lower is better; one integer)::

    W_STEP     * version-preference distance        (per node)
    W_STEP     * flipped-variant count              (per node/variant)
    W_STEP     * compiler global preference rank  } per node whose
    W_CDEP     + heterogeneity base cost          } compiler deviates
    W_PROVIDER * provider preference rank           (per virtual)
    W_REUSE    * nodes NOT already installed        (minimal change)

``W_PROVIDER`` is deliberately far below ``W_STEP`` so the entire
provider sub-space — exactly the space the backtracking concretizer
enumerates — is searched before any single version/variant/compiler
deviation: whatever backtracking rescues, the solver rescues within a
comparable attempt budget, and then keeps going.  ``W_REUSE`` is far
below everything else, so reuse of installed specs (the ``Database``
handed in at construction) breaks ties among equally-preferred
solutions without ever overriding an explicit preference.

A consequence worth naming: the solver is hash-identical to greedy
exactly when greedy's answer is *optimal* — the all-defaults
assignment is evaluated first and wins every tie.  On a
preference-aligned universe that is every greedy success.  But greedy
is myopic: a preferred provider can drag in a version downgrade
(``W_STEP``) that a cheap provider deviation (``W_PROVIDER``) avoids,
and there the solver returns a strictly better-scoring different DAG.
The differential oracle classifies that case as a benign
``improvement`` — it is the reason real Spack replaced greedy with an
optimizing solver — while same-score hash mismatches remain hard
divergences.

Telemetry: a ``solver.search`` span per concretization plus
``solver.attempts`` / ``solver.nogoods`` / ``solver.backjumps``
counters feeding the observatory.
"""

import heapq

from repro.core.concretizer import ConcretizationError, Concretizer
from repro.spec.errors import SpecError
from repro.spec.spec import CompilerSpec, Spec
from repro.version import Version

#: weight of one preference-distance step (versions, variants, and
#: compiler global rank) — the dominant term
W_STEP = 1000000
#: base cost of any node whose compiler deviates from what policy would
#: inherit (keeps DAGs single-toolchain unless a conflict forces it)
W_CDEP = 100000
#: weight of one provider-preference rank step; small enough that the
#: whole provider space is explored before any non-provider deviation
W_PROVIDER = 10000
#: weight of one not-installed node; must stay below every other weight
#: times any realistic DAG size, so reuse only ever breaks ties
W_REUSE = 1


class SolverLimitError(ConcretizationError):
    def __init__(self, spec, attempts):
        super().__init__(
            "Solver found no consistent configuration for %s in %d attempts"
            % (spec, attempts)
        )


class _Variable:
    """One decision: a key, a forcing domain, and per-index bound costs.

    ``domain[0]`` is always None ("greedy decides"); ``domain[i >= 1]``
    is a constraint Spec merged into the candidate.  ``costs[i]`` is the
    assignment's *lower bound* contribution — exact whenever the forced
    choice is actually used, and never above the true objective term (the
    branch-and-bound soundness requirement).
    """

    __slots__ = ("key", "target", "domain", "costs", "influence")

    def __init__(self, key, target, domain, costs, influence):
        self.key = key
        self.target = target        # package name the force applies to
        self.domain = domain        # [None, Spec, Spec, ...]
        self.costs = costs          # [0, int, int, ...]
        self.influence = influence  # frozenset of package/virtual names

    def __repr__(self):
        return "_Variable(%r, |%d|)" % (self.key, len(self.domain))


class SolverConcretizer(Concretizer):
    """Branch-and-bound CDCL-style search over the full choice space."""

    def __init__(self, *args, max_attempts=256, database=None, **kwargs):
        super().__init__(*args, **kwargs)
        self.max_attempts = max_attempts
        #: installed-spec source for the reuse objective (a Database or
        #: None); only ``query()`` is used
        self.database = database
        #: introspection: the last concretize() call's search statistics
        self.last_attempts = 0
        self.last_nogoods = 0
        self.last_backjumps = 0
        self.last_score = None
        self.last_proven_optimal = False
        self.last_deviations = {}
        self._rank_memo = {}

    # -- public API ---------------------------------------------------------
    def concretize(self, abstract_spec):
        if isinstance(abstract_spec, str):
            abstract_spec = Spec(abstract_spec)
        if abstract_spec.name is None:
            raise ConcretizationError("Cannot concretize an anonymous spec")
        if self.telemetry is not None and self.telemetry.enabled:
            with self.telemetry.span(
                "solver.search", spec=str(abstract_spec)
            ) as span:
                concrete = self._solve(abstract_spec)
                span.set(
                    attempts=self.last_attempts,
                    nogoods=self.last_nogoods,
                    backjumps=self.last_backjumps,
                    score=self.last_score,
                    proven_optimal=self.last_proven_optimal,
                )
                return concrete
        return self._solve(abstract_spec)

    # -- objective ----------------------------------------------------------
    def score(self, concrete):
        """The weighted objective of a concrete DAG (lower is better).

        Pure function of the DAG, the package universe, and the policy
        stack — the oracle uses it to score *other* concretizers'
        answers on the same scale.
        """
        cost = 0
        installed = self._installed_hashes()
        root = concrete
        for node in concrete.traverse():
            if not self.repo.exists(node.name):
                continue
            cls = self.repo.get_class(node.name)
            order = self._version_preference(node.name, cls)
            v = node.versions.concrete
            if v is not None and v in order:
                cost += order.index(v) * W_STEP
            for vname in sorted(node.provided_virtuals):
                ranks = self._provider_ranks(vname)
                cost += ranks.get(node.name, 0) * W_PROVIDER
            cost += self._compiler_cost(node, root, cls)
            for vname, variant in cls.variants.items():
                if vname in node.variants and bool(
                    node.variants[vname]
                ) != bool(self.policy.choose_variant(node.name, variant)):
                    cost += W_STEP
            if node.dag_hash() not in installed:
                cost += W_REUSE
        return cost

    def _compiler_cost(self, node, root, cls):
        """0 when the node carries the compiler policy would give it;
        otherwise a heterogeneity base plus the global preference rank."""
        requirements = self._active_compiler_requirements(node, cls)
        default = self._default_compiler(
            root.compiler if node is not root else None, requirements
        )
        actual = str(node.compiler)
        if default is not None and actual == default:
            return 0
        ranked = self._ranked_compilers()
        rank = ranked.index(actual) if actual in ranked else len(ranked)
        return W_CDEP + rank * W_STEP

    def _default_compiler(self, parent_compiler, requirements):
        from repro.compilers.registry import CompilerError

        try:
            cspec = self.policy.choose_compiler(
                self.compilers, parent_compiler, requirements=requirements
            )
            if cspec is None:
                return None
            best = self.policy.choose_compiler_version(
                self.compilers, cspec, requirements=requirements
            )
        except CompilerError:
            return None
        return "%s@%s" % (best.name, best.version)

    # -- preference rankings (memoized per universe state) ------------------
    def _version_preference(self, name, cls):
        """Declared versions, most policy-preferred first."""
        memo_key = ("version", name)
        cached = self._rank_memo.get(memo_key)
        if cached is not None:
            return cached
        declared = sorted(cls.versions, reverse=True)
        preferred = []
        for entry in self.config.preferred_versions(name):
            pv = Version(str(entry))
            for v in declared:
                if v.satisfies(pv) and v not in preferred:
                    preferred.append(v)
        checksummed = [
            v for v in declared
            if cls.versions[v].get("checksum") and v not in preferred
        ]
        rest = [v for v in declared if v not in preferred and v not in checksummed]
        order = preferred + checksummed + rest
        self._rank_memo[memo_key] = order
        return order

    def _provider_ranks(self, vname):
        """{provider name: policy preference rank} for one virtual."""
        memo_key = ("provider", vname)
        cached = self._rank_memo.get(memo_key)
        if cached is not None:
            return cached
        candidates = self.provider_index.providers_for(Spec(name=vname))
        ordered = self.policy.order_providers(vname, candidates)
        names = list(dict.fromkeys(c.name for c in ordered))
        ranks = {n: i for i, n in enumerate(names)}
        self._rank_memo[memo_key] = ranks
        return ranks

    def _ranked_compilers(self):
        """Registered compilers as ``name@version`` strings, most
        policy-preferred first: config ``compiler_order`` entries resolve
        to their best registered match, everything else follows by name,
        newest first."""
        cached = self._rank_memo.get("compilers")
        if cached is not None:
            return cached
        ranked = []
        for entry in self.config.compiler_order():
            matches = self.compilers.compilers_for(CompilerSpec(entry))
            if matches:
                best = matches[-1]
                text = "%s@%s" % (best.name, best.version)
                if text not in ranked:
                    ranked.append(text)
        newest_first = sorted(
            self.compilers.all_compilers(), key=lambda c: c.version, reverse=True
        )
        for compiler in sorted(newest_first, key=lambda c: c.name):
            text = "%s@%s" % (compiler.name, compiler.version)
            if text not in ranked:
                ranked.append(text)
        self._rank_memo["compilers"] = ranked
        return ranked

    def _installed_hashes(self):
        if self.database is None:
            return frozenset()
        try:
            records = self.database.query()
        except Exception:  # noqa: BLE001 — reuse is best-effort advice
            return frozenset()
        hashes = set()
        for record in records:
            for node in record.spec.traverse():
                hashes.add(node.dag_hash())
        return frozenset(hashes)

    # -- choice-space derivation --------------------------------------------
    def _reachable(self, roots):
        """(packages, virtuals) statically reachable from ``roots`` —
        conditional dependencies and every provider over-approximated."""
        packages, virtuals = set(), set()
        stack = list(roots)
        while stack:
            name = stack.pop()
            if name in packages or name in virtuals:
                continue
            if self._is_virtual(name):
                virtuals.add(name)
                for provider in self.provider_index.providers_for(Spec(name=name)):
                    stack.append(provider.name)
                continue
            if not self.repo.exists(name):
                continue
            packages.add(name)
            stack.extend(self.repo.get_class(name).dependencies)
        return packages, virtuals

    def _influence(self, name):
        """The closure a choice at ``name`` can possibly constrain."""
        memo_key = ("influence", name)
        cached = self._rank_memo.get(memo_key)
        if cached is None:
            packages, virtuals = self._reachable([name])
            cached = frozenset(packages | virtuals | {name})
            self._rank_memo[memo_key] = cached
        return cached

    def _choice_variables(self, abstract_spec):
        """Decision variables for one request, deterministically ordered:
        providers first (cheap ranks — the backtracking sub-space), then
        versions, variants, and compilers."""
        roots = [abstract_spec.name]
        roots.extend(sorted(abstract_spec.flat_dependencies()))
        packages, virtuals = self._reachable(roots)

        variables = []
        for vname in sorted(virtuals):
            ranks = self._provider_ranks(vname)
            names = sorted(ranks, key=ranks.get)
            if len(names) < 2:
                continue
            domain = [None] + [Spec(name=n) for n in names[1:]]
            costs = [0] + [i * W_PROVIDER for i in range(1, len(names))]
            influence = frozenset().union(
                {vname}, *(self._influence(n) for n in names)
            )
            variables.append(_Variable(
                ("provider", vname), None, domain, costs, influence,
            ))

        for pname in sorted(packages):
            cls = self.repo.get_class(pname)
            order = self._version_preference(pname, cls)
            if len(order) > 1:
                domain = [None] + [
                    Spec("%s@%s" % (pname, v)) for v in order[1:]
                ]
                costs = [0] + [i * W_STEP for i in range(1, len(order))]
                variables.append(_Variable(
                    ("version", pname), pname, domain, costs,
                    self._influence(pname),
                ))

        for pname in sorted(packages):
            cls = self.repo.get_class(pname)
            for vname, variant in sorted(cls.variants.items()):
                default = bool(self.policy.choose_variant(pname, variant))
                flip = "~" if default else "+"
                variables.append(_Variable(
                    ("variant", pname, vname), pname,
                    [None, Spec("%s%s%s" % (pname, flip, vname))],
                    [0, W_STEP], self._influence(pname),
                ))

        ranked = self._ranked_compilers()
        if len(ranked) > 1:
            for pname in sorted(packages):
                if pname == abstract_spec.name:
                    # ranked[0] is the root's static default: forcing it
                    # is a no-op, so the domain starts at ranked[1]
                    options = ranked[1:]
                    costs = [0] + [
                        W_CDEP + (i + 1) * W_STEP for i in range(len(options))
                    ]
                else:
                    # a dependency's default is inherited from the root,
                    # so even ranked[0] can be a real deviation
                    options = ranked
                    costs = [0] + [
                        W_CDEP + i * W_STEP for i in range(len(options))
                    ]
                domain = [None] + [
                    Spec("%s%%%s" % (pname, text)) for text in options
                ]
                variables.append(_Variable(
                    ("compiler", pname), pname, domain, costs,
                    self._influence(pname),
                ))
        return variables

    def _request_floor(self, abstract_spec, variables):
        """The cost every solution of this request must pay, per variable.

        A request constraint (``@version`` range, ``+variant`` flip,
        ``%compiler`` pin) forces a deviation on *every* consistent
        solution — strict request satisfaction is part of the contract —
        so the minimum cost it implies is a true lower bound on the
        final score.  Returns ``(floor, shifted)`` where ``floor`` is
        the summed minimum and ``shifted`` replaces each affected
        variable's cost vector with its excess over that minimum:
        seeding the search bound with ``floor`` keeps bounds admissible
        while letting the incumbent-vs-bound break fire as early on a
        pinned request as on a bare one.

        Only provably-forced costs are charged; anything uncertain (a
        dependency's compiler pin the root may inherit for free, a
        package whose ``compiler_requirements`` can shift its default)
        contributes zero — the floor under-approximates, never over.
        """
        nodes = {abstract_spec.name: abstract_spec}
        nodes.update(abstract_spec.flat_dependencies())
        floor = 0
        shifted = []
        for variable in variables:
            node = nodes.get(variable.target)
            minimum = 0
            if node is not None:
                kind = variable.key[0]
                if kind == "version" and node.versions:
                    minimum = self._version_floor(variable, node)
                elif kind == "variant":
                    minimum = self._variant_floor(variable, node)
                elif kind == "compiler" and node.compiler is not None:
                    minimum = self._compiler_floor(
                        variable, node, node is abstract_spec
                    )
            if minimum:
                floor += minimum
                variable = _Variable(
                    variable.key, variable.target, variable.domain,
                    [max(0, cost - minimum) for cost in variable.costs],
                    variable.influence,
                )
            shifted.append(variable)
        return floor, shifted

    def _version_floor(self, variable, node):
        cls = self.repo.get_class(variable.target)
        order = self._version_preference(variable.target, cls)
        ranks = [
            i for i, v in enumerate(order) if v.satisfies(node.versions)
        ]
        return min(ranks) * W_STEP if ranks else 0

    def _variant_floor(self, variable, node):
        vname = variable.key[2]
        if vname not in node.variants:
            return 0
        cls = self.repo.get_class(variable.target)
        default = bool(self.policy.choose_variant(
            variable.target, cls.variants[vname]
        ))
        return W_STEP if bool(node.variants[vname]) != default else 0

    def _compiler_floor(self, variable, node, is_root):
        # a dependency inherits the root's compiler: its pin may end up
        # free, so only the root's pin provably costs anything — and only
        # when no feature requirement can shift the static default
        cls = self.repo.get_class(variable.target)
        if not is_root or getattr(cls, "compiler_requirements", None):
            return 0
        default = self._default_compiler(None, ())
        if default is not None and CompilerSpec(default).satisfies(
            node.compiler
        ):
            return 0
        candidates = [
            variable.costs[i]
            for i, choice in enumerate(variable.domain)
            if choice is not None
            and choice.compiler.satisfies(node.compiler)
        ]
        return min(candidates) if candidates else 0

    # -- candidate materialization ------------------------------------------
    def _materialize(self, abstract_spec, variables, assignment):
        """Merge every forced choice into a copy of the request."""
        candidate = abstract_spec.copy()
        for position, index in sorted(assignment.items()):
            variable = variables[position]
            force = variable.domain[index]
            flat = candidate.flat_dependencies()
            if force.name == candidate.name:
                candidate.constrain(force, deps=False)
            elif force.name in flat:
                flat[force.name].constrain(force, deps=False)
            else:
                candidate._add_dependency(force.copy())
        return candidate

    # -- conflict analysis --------------------------------------------------
    def _conflict_prefix(self, error, variables, assignment):
        """The minimal conflicting assignment prefix for a failed pass.

        The typed error's text names the packages involved; only the
        variables whose influence closure meets that set can have caused
        the failure, so the nogood records exactly those variables at
        their failing indices (unassigned = 0).  When nothing can be
        attributed the whole assignment is recorded — a weaker nogood
        that only prunes exact repeats.
        """
        text = str(error)
        long_message = getattr(error, "long_message", None)
        if long_message:
            text += " " + str(long_message)
        mentioned = {
            name
            for variable in variables
            for name in variable.influence
            if name in text
        }
        involved = [
            position
            for position, variable in enumerate(variables)
            if variable.influence & mentioned
        ]
        if not involved or not mentioned:
            involved = range(len(variables))
        return frozenset(
            (position, assignment.get(position, 0)) for position in involved
        )

    @staticmethod
    def _subsumed(nogood, assignment):
        return all(
            assignment.get(position, 0) == index for position, index in nogood
        )

    # -- the search ----------------------------------------------------------
    def _count(self, name):
        if self.telemetry is not None:
            self.telemetry.count("solver." + name)

    def _solve(self, abstract_spec):
        self.last_attempts = 0
        self.last_nogoods = 0
        self.last_backjumps = 0
        self.last_score = None
        self.last_proven_optimal = False
        self.last_deviations = {}

        variables = self._choice_variables(abstract_spec)
        floor, variables = self._request_floor(abstract_spec, variables)
        nogoods = []
        incumbent = None
        incumbent_score = None
        last_error = None

        # Best-first over assignment vectors.  Each heap entry is a
        # complete candidate (unassigned variables default to greedy);
        # children bump one variable at or past the frontier, so every
        # vector is generated exactly once and bounds grow monotonically.
        counter = 0
        heap = [(floor, 0, {}, 0)]
        pop_budget = max(1024, self.max_attempts * 64)

        while heap:
            bound, _, assignment, frontier = heapq.heappop(heap)
            pop_budget -= 1
            if incumbent_score is not None and bound >= incumbent_score:
                self.last_proven_optimal = True
                break
            if pop_budget <= 0 or self.last_attempts >= self.max_attempts:
                if incumbent is None:
                    raise SolverLimitError(abstract_spec, self.last_attempts)
                break

            skip = any(self._subsumed(ng, assignment) for ng in nogoods)
            if skip:
                self.last_backjumps += 1
                self._count("backjumps")
            else:
                self.last_attempts += 1
                self._count("attempts")
                try:
                    candidate = self._materialize(
                        abstract_spec, variables, assignment
                    )
                    concrete = self._fixed_point(candidate)
                except (ConcretizationError, SpecError) as e:
                    last_error = e
                    nogoods.append(
                        self._conflict_prefix(e, variables, assignment)
                    )
                    self.last_nogoods += 1
                    self._count("nogoods")
                else:
                    found = self.score(concrete)
                    if incumbent_score is None or found < incumbent_score:
                        incumbent = concrete
                        incumbent_score = found
                        self.last_deviations = {
                            variables[position].key: index
                            for position, index in assignment.items()
                        }

            for position in range(frontier, len(variables)):
                variable = variables[position]
                next_index = assignment.get(position, 0) + 1
                if next_index >= len(variable.domain):
                    continue
                child = dict(assignment)
                child[position] = next_index
                child_bound = (
                    bound
                    - variable.costs[next_index - 1]
                    + variable.costs[next_index]
                )
                if incumbent_score is not None and child_bound >= incumbent_score:
                    continue
                counter += 1
                heapq.heappush(heap, (child_bound, counter, child, position))
        else:
            # heap ran dry: the whole bounded space was explored
            if incumbent is not None:
                self.last_proven_optimal = True

        if incumbent is None:
            raise ConcretizationError(
                "All %d explored assignments for %s are inconsistent"
                % (self.last_attempts, abstract_spec),
                long_message="last failure: %s" % last_error,
            )
        self.last_score = incumbent_score
        return incumbent
