"""Concretization policies: how unconstrained parameters get values.

The paper separates the *mechanism* of concretization from site/user
*policy* (§3.4.4): "the site or the user can set default versions to use
for any library that is not specified explicitly."  :class:`DefaultPolicy`
reads those preferences from :class:`~repro.config.Config`; a site can
subclass it and hand its subclass to the Session for fully custom rules.

Default preference order (matching §4.3.1): newer versions over older,
explicitly preferred compilers/providers first, anything unlisted after
everything listed, then a deterministic tie-break.
"""

from repro.spec.spec import CompilerSpec
from repro.version import Version


class DefaultPolicy:
    """Config-driven choices for versions, providers, compilers, variants,
    and architecture."""

    def __init__(self, config):
        self.config = config

    # -- versions ---------------------------------------------------------
    def choose_version(self, package_name, declared_versions, constraint):
        """Pick a version for a node from the package's declared versions.

        Order: site/user preferred versions that satisfy the constraint,
        then the highest declared safe (checksummed) version satisfying
        it, then the highest declared version at all.  Returns None when
        nothing declared matches (the caller then decides whether the
        constraint itself names an exact version to fetch, §3.2.3).
        """
        satisfying = [
            v for v in sorted(declared_versions, reverse=True)
            if constraint.contains_version(v)
        ]
        if not satisfying:
            return None
        for preferred in self.config.preferred_versions(package_name):
            pv = Version(str(preferred))
            for v in satisfying:
                if v.satisfies(pv):
                    return v
        checksummed = [
            v for v in satisfying if declared_versions[v].get("checksum")
        ]
        return checksummed[0] if checksummed else satisfying[0]

    # -- virtual providers -----------------------------------------------------
    def order_providers(self, virtual_name, candidates):
        """Sort candidate provider specs: config order first, then name,
        then higher version constraints first."""
        preference = self.config.provider_order(virtual_name)

        def rank(provider_spec):
            name = provider_spec.name
            listed = preference.index(name) if name in preference else len(preference)
            highest = provider_spec.versions.highest()
            # invert version ordering: higher versions first
            version_key = tuple(
                (-k[0], _negate(k[1])) for k in (highest.key if highest else ())
            )
            return (listed, name, version_key)

        return sorted(candidates, key=rank)

    # -- compilers -----------------------------------------------------------------
    def choose_compiler(self, registry, parent_compiler=None, requirements=()):
        """Default compiler for a node with no ``%`` constraint.

        Inherit the parent/root compiler when there is one (keeps a DAG
        single-toolchain by default) — unless it cannot satisfy the
        node's feature ``requirements`` — otherwise the first entry of
        ``compiler_order`` with a satisfying version, then the newest
        gcc, then anything that works.
        """
        def some_version_supports(cspec):
            return any(
                all(c.supports(f) for f in requirements)
                for c in registry.compilers_for(cspec)
            )

        if parent_compiler is not None:
            if not requirements or some_version_supports(parent_compiler):
                return parent_compiler.copy()
        for entry in self.config.compiler_order():
            cspec = CompilerSpec(entry)
            if registry.exists(cspec) and (not requirements or some_version_supports(cspec)):
                return cspec
        gcc = CompilerSpec("gcc")
        if registry.exists(gcc) and (not requirements or some_version_supports(gcc)):
            return gcc
        for compiler in reversed(registry.all_compilers()):
            cspec = CompilerSpec(compiler.name)
            if not requirements or some_version_supports(cspec):
                return cspec
        return None

    def choose_compiler_version(self, registry, cspec, requirements=()):
        """Resolve a compiler constraint to the best registered version
        that satisfies every required feature."""
        from repro.compilers.registry import CompilerFeatureError

        matches = registry.compilers_for(cspec)
        if not matches:
            from repro.compilers.registry import NoSuchCompilerError

            raise NoSuchCompilerError(cspec)
        supporting = [
            c for c in matches if all(c.supports(f) for f in requirements)
        ]
        if not supporting:
            raise CompilerFeatureError(cspec, requirements, matches)
        return supporting[-1]

    # -- variants -----------------------------------------------------------------------
    def choose_variant(self, package_name, variant):
        """Value for a variant the spec leaves unset: user preference,
        else the package's declared default."""
        prefs = self.config.preferred_variants(package_name)
        if variant.name in prefs:
            return bool(prefs[variant.name])
        return variant.default

    # -- architecture ----------------------------------------------------------------------
    def choose_architecture(self, parent_arch=None):
        if parent_arch is not None:
            return parent_arch
        return self.config.default_architecture() or "linux-x86_64"


def _negate(value):
    """Order-inverting key for ints and strings."""
    if isinstance(value, int):
        return -value
    return tuple(-ord(ch) for ch in value)
