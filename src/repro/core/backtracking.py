"""Backtracking concretization — the paper's §4.5 future work.

The shipped algorithm is greedy: "Spack currently avoids an exhaustive
search... It will not backtrack to try other options if its first policy
choice leads to an inconsistency."  The paper's motivating failure is
the hwloc case: P depends on ``hwloc@1.9`` and ``mpi``; the
policy-preferred MPI strictly requires ``hwloc@1.8``; greedy stops with
an error even though another MPI would work.

:class:`BacktrackingConcretizer` adds the "automatic constraint space
exploration" the paper deferred: when the greedy pass fails, it
enumerates the *virtual provider* choice points (the dominant source of
greedy dead ends — provider choice changes whole subtrees) and searches
assignments depth-first in policy-preference order, so the first
success is still the most-preferred consistent solution.  Version and
variant choice points are not explored (they are policy-monotone in
this model: a different version choice never fixes a constraint
conflict that intersecting the constraints did not, because declared
constraints are intersected *before* versions are chosen).

The search is bounded by ``max_attempts``; each attempt is one full
greedy concretization, so worst-case cost is attempts × greedy — the
ablation benchmark quantifies this against the greedy baseline.
"""

import itertools

from repro.core.concretizer import (
    ConcretizationError,
    Concretizer,
)
from repro.spec.errors import SpecError
from repro.spec.spec import Spec


class BacktrackLimitError(ConcretizationError):
    def __init__(self, spec, attempts):
        super().__init__(
            "No consistent configuration for %s found in %d attempts" % (spec, attempts)
        )


class BacktrackingConcretizer(Concretizer):
    """Greedy first; on failure, explore virtual-provider assignments."""

    def __init__(self, *args, max_attempts=256, **kwargs):
        super().__init__(*args, **kwargs)
        self.max_attempts = max_attempts
        #: number of greedy passes the last concretize() consumed
        self.last_attempts = 0

    def concretize(self, abstract_spec):
        if isinstance(abstract_spec, str):
            abstract_spec = Spec(abstract_spec)
        self.last_attempts = 1
        try:
            return super().concretize(abstract_spec)
        except ConcretizationError as first_error:
            return self._search(abstract_spec, first_error)

    # -- the search ---------------------------------------------------------
    def _search(self, abstract_spec, first_error):
        choice_points = self._virtual_choice_points(abstract_spec)
        if not choice_points:
            raise first_error

        names = sorted(choice_points)
        last_error = first_error
        for assignment in itertools.product(*(choice_points[v] for v in names)):
            if self.last_attempts >= self.max_attempts:
                raise BacktrackLimitError(abstract_spec, self.last_attempts)
            candidate = abstract_spec.copy()
            try:
                for provider_name in assignment:
                    if provider_name not in candidate.flat_dependencies():
                        candidate._add_dependency(Spec(name=provider_name))
                self.last_attempts += 1
                return super().concretize(candidate)
            except (ConcretizationError, SpecError) as e:
                last_error = e
                continue
        raise ConcretizationError(
            "All %d provider assignments for %s are inconsistent"
            % (self.last_attempts - 1, abstract_spec),
            long_message="last failure: %s" % last_error,
        )

    def _virtual_choice_points(self, abstract_spec):
        """{virtual name: [provider names, policy-preferred first]} for
        every virtual reachable from the root's package metadata.

        Reachability over-approximates (conditional deps are assumed
        possible); an assignment whose provider ends up unused simply
        fails the pruned-edge validation and the search moves on.
        """
        reachable = set()
        virtuals = {}
        stack = [abstract_spec.name]
        seen = set()
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            if self._is_virtual(name):
                candidates = self.provider_index.providers_for(Spec(name=name))
                ordered = self.policy.order_providers(name, candidates)
                provider_names = list(dict.fromkeys(c.name for c in ordered))
                if len(provider_names) > 1:
                    virtuals[name] = provider_names
                stack.extend(provider_names)
                continue
            if not self.repo.exists(name):
                continue
            reachable.add(name)
            cls = self.repo.get_class(name)
            stack.extend(cls.dependencies)
        return virtuals
