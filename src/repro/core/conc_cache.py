"""The persistent concretization cache (fast-path Layer 3).

Concretization is a pure function of four inputs: the abstract request,
the package universe, the configuration/policy stack, and the algorithm
variant (greedy or backtracking).  This module captures those inputs as
digests and memoizes the output — the serialized concrete DAG — on
disk, following Guix's insight (PAPERS.md: *Reproducible and
User-Controlled Software Environments in HPC*) that derived results
keyed by content digest can be reused indefinitely without a
correctness risk: change any input and the key changes with it.

Layout (same locked read-merge-write discipline as
:mod:`repro.store.buildcache`'s index, but sharded)::

    <root>/index/<kk>.json            {key: {root, dag_hash, entry}}
    <root>/<kk>/<key>.json            serialized concrete spec (to_dict)

where ``<kk>`` is the first two key characters (fanout).  The index is
*sharded* by key prefix: a store rewrites one ~n/256-entry shard
instead of the whole index, so warming a 10k-root universe is O(n) in
index bytes rather than O(n²).  Payloads are content-addressed per
entry so concurrent writers never rewrite each other's payloads, and
every shard merge happens under one advisory
:class:`~repro.util.lock.Lock`.  A legacy monolithic
``<root>/index.json`` (the pre-shard layout) is migrated into shards
once, on first access, under the same lock.

Integrity is hash-first: a looked-up payload is deserialized and its
``dag_hash`` recomputed; a mismatch against the indexed hash (bit rot,
a truncated write, or the ``concretize.cache.corrupt`` fault) drops
the entry and falls back to cold concretization.  Telemetry counters:
``concretize.cache.hit`` / ``.miss`` / ``.invalidate``.
"""

import hashlib
import json
import os
import tempfile

from repro.spec.spec import Spec
from repro.util.filesystem import mkdirp
from repro.util.lock import Lock


def describe_package_class(cls):
    """Stable one-line description of a package class's directive state.

    Covers everything concretization can observe: declared versions (and
    checksums/urls — a checksum change means the package file changed),
    dependency constraints with predicates, provided interfaces,
    variants with defaults, compiler feature requirements, conflicts,
    and patches.
    """
    versions = sorted(
        (str(v), info.get("checksum") or "", info.get("url") or "",
         str(info.get("when") or ""))
        for v, info in getattr(cls, "versions", {}).items()
    )
    dependencies = sorted(
        (name, str(dc.spec), str(dc.when) if dc.when is not None else "")
        for name, constraints in getattr(cls, "dependencies", {}).items()
        for dc in constraints
    )
    provided = sorted(
        (str(p.spec), str(p.when) if p.when is not None else "")
        for p in getattr(cls, "provided", ())
    )
    variants = sorted(
        (name, bool(v.default)) for name, v in getattr(cls, "variants", {}).items()
    )
    requirements = sorted(
        (str(feature), str(when) if when is not None else "")
        for feature, when in getattr(cls, "compiler_requirements", ())
    )
    conflicts = sorted(
        (str(spec), str(when) if when is not None else "", msg or "")
        for spec, when, msg in getattr(cls, "conflict_specs", ())
    )
    patches = sorted(
        (p.name, str(p.when) if p.when is not None else "")
        for p in getattr(cls, "patches", ())
    )
    return repr((versions, dependencies, provided, variants, requirements,
                 conflicts, patches))


class EnvironmentDigest:
    """Digest of everything concretization depends on besides the spec.

    The expensive part — walking every package class — is memoized on
    cheap mutation tokens (:meth:`Repository.mutation_token`,
    :meth:`Config.mutation_token`, the compiler registry contents), so
    steady-state calls are a token comparison, while any package
    registration, config update, or compiler change produces a new
    digest and thereby invalidates every cache key automatically.
    """

    def __init__(self, repo, compilers, config, policy):
        self.repo = repo
        self.compilers = compilers
        self.config = config
        self.policy = policy
        self._token = None
        self._digest = None

    def _compiler_fingerprint(self):
        return tuple(
            (str(c), tuple(sorted((f, str(v)) for f, v in c.features.items())))
            for c in self.compilers.all_compilers()
        )

    def _policy_fingerprint(self):
        cls = type(self.policy)
        return "%s.%s" % (cls.__module__, cls.__qualname__)

    def current(self):
        """The current environment digest (hex), recomputed only when a
        mutation token changed."""
        token = (
            self.repo.mutation_token(),
            self.config.mutation_token(),
            self._compiler_fingerprint(),
            self._policy_fingerprint(),
        )
        if token == self._token and self._digest is not None:
            return self._digest
        digest = hashlib.sha256()
        for name in self.repo.all_package_names():
            digest.update(name.encode())
            digest.update(describe_package_class(self.repo.get_class(name)).encode())
        digest.update(
            json.dumps(self.config.merged(), sort_keys=True, default=str).encode()
        )
        digest.update(repr(self._compiler_fingerprint()).encode())
        digest.update(self._policy_fingerprint().encode())
        self._token = token
        self._digest = digest.hexdigest()
        return self._digest


class ConcretizationCache:
    """On-disk map from (abstract spec, environment, variant) to a
    serialized concrete spec."""

    def __init__(self, root, telemetry=None, faults=None):
        self.root = os.path.abspath(root)
        self.telemetry = telemetry
        self.faults = faults
        self._index_lock = Lock(os.path.join(self.root, ".index.lock"))
        #: stat-validated parses, one per shard: {kk: ((mtime_ns, size),
        #: dict)} — each value is one atomic pair so a concurrent reader
        #: can't pair a fresh stamp with a stale parse
        self._shard_memos = {}

    # -- keys --------------------------------------------------------------
    @staticmethod
    def make_key(abstract_text, env_digest, variant):
        """Cache key: sha256 over the canonical abstract spec text, the
        environment digest, and the concretizer variant name."""
        blob = "%s\n%s\n%s" % (abstract_text, env_digest, variant)
        return hashlib.sha256(blob.encode()).hexdigest()

    # -- index I/O (buildcache discipline, sharded) ------------------------
    def _legacy_index_path(self):
        return os.path.join(self.root, "index.json")

    def _shard_dir(self):
        return os.path.join(self.root, "index")

    def _shard_path(self, kk):
        return os.path.join(self._shard_dir(), "%s.json" % kk)

    def _migrate_legacy(self):
        """Fold a pre-shard monolithic ``index.json`` into the sharded
        layout.  Runs at most once per on-disk cache (the legacy file is
        removed after its entries land in their shards); the steady-state
        cost is one ``os.path.exists`` stat."""
        legacy_path = self._legacy_index_path()
        if not os.path.exists(legacy_path):
            return
        mkdirp(self._shard_dir())
        with self._index_lock:
            if not os.path.exists(legacy_path):  # another session won
                return
            try:
                with open(legacy_path) as f:
                    legacy = json.load(f)
            except (OSError, ValueError):
                legacy = {}
            by_shard = {}
            for key, entry in legacy.items():
                by_shard.setdefault(key[:2], {})[key] = entry
            for kk, entries in sorted(by_shard.items()):
                merged = self._read_shard_unmemoized(kk)
                # shard entries win: they are newer than the legacy file
                merged = dict(entries, **merged)
                self._atomic_write(
                    self._shard_path(kk),
                    json.dumps(merged, indent=1, sort_keys=True).encode(),
                )
            os.remove(legacy_path)
            self._shard_memos = {}

    def _read_shard_unmemoized(self, kk):
        try:
            with open(self._shard_path(kk)) as f:
                return json.load(f)
        except (OSError, ValueError):
            return {}

    def read_shard(self, kk):
        """{key: {root, dag_hash, entry}} for one shard — empty when
        absent.  The parsed shard is reused until the file's (mtime,
        size) changes, so steady-state lookups do one ``stat`` instead
        of a full read+parse."""
        path = self._shard_path(kk)
        try:
            st = os.stat(path)
            stamp = (st.st_mtime_ns, st.st_size)
        except OSError:
            self._shard_memos.pop(kk, None)
            return {}
        memo = self._shard_memos.get(kk)  # one read: writers can't tear it
        if memo is not None and memo[0] == stamp:
            return memo[1]
        try:
            with open(path) as f:
                shard = json.load(f)
        except (OSError, ValueError):
            return {}
        self._shard_memos[kk] = (stamp, shard)
        return shard

    def read_index(self):
        """The merged {key: entry} view across every shard.  O(total
        entries) — diagnostics and tests only; the hot paths read one
        shard."""
        self._migrate_legacy()
        index = {}
        try:
            shard_files = sorted(os.listdir(self._shard_dir()))
        except OSError:
            return index
        for name in shard_files:
            if name.endswith(".json"):
                index.update(self.read_shard(name[:-len(".json")]))
        return index

    def _update_shard(self, kk, mutate):
        """Read-merge-write one shard under the cache lock; racing
        sessions never lose each other's entries, and the bytes written
        scale with the shard (~n/256), not the whole index."""
        self._migrate_legacy()
        mkdirp(self._shard_dir())
        with self._index_lock:
            shard = dict(self._read_shard_unmemoized(kk))
            mutate(shard)
            self._atomic_write(
                self._shard_path(kk),
                json.dumps(shard, indent=1, sort_keys=True).encode(),
            )
            self._shard_memos.pop(kk, None)  # force re-stat on next read

    @staticmethod
    def _atomic_write(path, data):
        # the tmp name must be unique per *writer*, not per process: two
        # daemon worker threads share a pid, and a fixed name lets one
        # writer truncate (or os.replace away) the other's half-written
        # file.  mkstemp gives each call its own exclusively-created file.
        fd, tmp = tempfile.mkstemp(
            prefix=os.path.basename(path) + ".", suffix=".tmp",
            dir=os.path.dirname(path),
        )
        try:
            with os.fdopen(fd, "wb") as f:
                f.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.remove(tmp)
            except OSError:
                pass
            raise

    # -- payloads ----------------------------------------------------------
    def _entry_path(self, key):
        return os.path.join(self.root, key[:2], "%s.json" % key)

    def _count(self, name):
        if self.telemetry is not None:
            self.telemetry.count("concretize.cache.%s" % name)

    def _drop(self, key):
        """Remove a bad entry (corrupt payload or stale hash)."""
        self._update_shard(key[:2], lambda shard: shard.pop(key, None))
        try:
            os.remove(self._entry_path(key))
        except OSError:
            pass
        self._count("invalidate")

    # -- the cache proper --------------------------------------------------
    def lookup(self, key):
        """The cached concrete Spec for ``key``, or None.

        Every hit is verified: the payload is deserialized and its DAG
        hash recomputed against the indexed one, so corruption — real or
        injected through the ``concretize.cache.corrupt`` fault site —
        is caught here and answered by dropping the entry (the caller
        then re-concretizes from scratch).  Returns a fresh Spec per
        call; callers own (and may mutate) the result.
        """
        self._migrate_legacy()
        entry = self.read_shard(key[:2]).get(key)
        if entry is None:
            self._count("miss")
            return None
        try:
            with open(self._entry_path(key), "rb") as f:
                payload = f.read()
        except OSError:
            self._drop(key)
            self._count("miss")
            return None
        if self.faults is not None:
            fault = self.faults.hit(
                "concretize.cache.corrupt", target=entry.get("root")
            )
            if fault is not None:
                # rot the payload the way a torn write would
                payload = payload[: max(0, len(payload) // 2)] + b'{"rot":1}'
        try:
            spec = Spec.from_dict(json.loads(payload.decode()))
            dag_hash = spec.dag_hash()
        except Exception:
            self._drop(key)
            self._count("miss")
            return None
        if dag_hash != entry.get("dag_hash"):
            self._drop(key)
            self._count("miss")
            return None
        self._count("hit")
        return spec

    def store(self, key, spec):
        """Persist a concrete spec under ``key`` (payload first, then the
        index entry, so a reader never sees an indexed-but-missing
        payload)."""
        entry_path = self._entry_path(key)
        mkdirp(os.path.dirname(entry_path))
        payload = json.dumps(spec.to_dict(), sort_keys=True, indent=1)
        self._atomic_write(entry_path, payload.encode())
        entry = {
            "root": spec.name,
            "dag_hash": spec.dag_hash(),
            "entry": os.path.join(key[:2], "%s.json" % key),
        }
        self._update_shard(key[:2], lambda shard: shard.__setitem__(key, entry))

    def entries(self):
        """(key, entry) pairs, deterministically ordered."""
        return sorted(self.read_index().items())

    def __len__(self):
        return len(self.read_index())
