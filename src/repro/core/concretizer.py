"""The greedy, fixed-point concretization algorithm (paper §3.4, Figure 6).

Pipeline per iteration (repeated until nothing changes):

1. **Expand dependencies** — walk every node's package file, evaluate each
   ``depends_on`` whose ``when`` predicate is *guaranteed* by the node's
   current constraints (strict containment — a predicate on a parameter
   that is still open does not fire until the parameter is fixed), and
   merge the declared constraints into the DAG.  Nodes are unique per
   name, so constraints from different dependents intersect on one node —
   conflicting requirements surface here as UnsatisfiableSpecErrors.
2. **Resolve virtuals** — replace interface nodes (``mpi``) with provider
   nodes chosen from the :class:`~repro.repo.ProviderIndex`; an existing
   DAG node that can provide the interface (e.g. a user-supplied
   ``^mvapich2``) always wins, otherwise site/user provider preferences
   order the candidates.
3. **Concretize parameters** — fix versions, compilers, compiler
   versions, variants, and architectures from policies.  Setting a
   parameter can make new ``when`` predicates fire, so the cycle repeats
   (the paper's ``+mpi`` example).

The algorithm is greedy: no backtracking.  If the first policy-preferred
choice leads to a contradiction the user gets an error and resolves it by
being more explicit (§4.5's ``hwloc`` example is a test case).
"""

from repro.errors import ReproError
from repro.spec.errors import UnknownVariantError, UnsatisfiableSpecError
from repro.spec.spec import Spec
from repro.version import Version, VersionList
from repro.core.policies import DefaultPolicy


class ConcretizationError(ReproError):
    """Concretization could not produce a concrete spec."""


class UnknownPackageError(ConcretizationError):
    def __init__(self, name, context=None):
        message = "Unknown package %r" % name
        if context:
            message += " (required by %s)" % context
        super().__init__(message)
        self.name = name


class NoSatisfyingVersionError(ConcretizationError):
    def __init__(self, name, constraint):
        super().__init__(
            "Package %r has no declared version satisfying @%s" % (name, constraint)
        )


class NoBuildableProviderError(ConcretizationError):
    def __init__(self, virtual_spec):
        super().__init__(
            "No provider satisfies virtual dependency %s" % virtual_spec,
            long_message="Force a provider with ^<package>, or relax the "
            "constraints on %s." % virtual_spec.name,
        )


class CyclicDependencyError(ConcretizationError):
    def __init__(self, cycle):
        super().__init__(
            "Circular dependency detected: %s" % " -> ".join(cycle)
        )


class ConflictError(ConcretizationError):
    """A concretized node hit a package's declared ``conflicts()``."""


#: Safety bound on fixed-point iterations; real DAGs converge in a handful.
MAX_ITERATIONS = 128


class Concretizer:
    """Turns abstract specs into concrete ones against a package universe.

    Parameters
    ----------
    repo : RepoPath or Repository
    provider_index : ProviderIndex
    compilers : CompilerRegistry
    config : Config
    policy : DefaultPolicy, optional
        Site-customizable decision rules.
    """

    def __init__(self, repo, provider_index, compilers, config, policy=None,
                 trace=None, telemetry=None):
        self.repo = repo
        self.provider_index = provider_index
        self.compilers = compilers
        self.config = config
        self.policy = policy or DefaultPolicy(config)
        #: optional callback(event: dict) observing the Figure 6 pipeline
        self.trace = trace
        #: optional session Telemetry hub; pipeline stages become
        #: ``concretize.<stage>`` events (same payloads as ``trace``)
        self.telemetry = telemetry

    def _observing(self):
        """True when some observer will actually see emitted events.

        Hot call sites check this *before* building event payloads —
        rendering specs and sorting node names is far more expensive
        than the emit itself, and must cost nothing when nobody
        listens (see benchmarks/bench_telemetry_overhead.py).
        """
        return self.trace is not None or (
            self.telemetry is not None and self.telemetry.enabled
        )

    def _emit(self, kind, **data):
        if self.trace is not None:
            self.trace(dict(data, event=kind))
        if self.telemetry is not None:
            self.telemetry.event("concretize." + kind, **data)

    # -- public API ----------------------------------------------------------
    def concretize(self, abstract_spec):
        """Return a new, fully concrete Spec satisfying ``abstract_spec``."""
        if isinstance(abstract_spec, str):
            abstract_spec = Spec(abstract_spec)
        if abstract_spec.name is None:
            raise ConcretizationError("Cannot concretize an anonymous spec")
        if self.telemetry is not None and self.telemetry.enabled:
            with self.telemetry.span("concretize", spec=str(abstract_spec)) as span:
                concrete = self._fixed_point(abstract_spec)
                span.set(nodes=len(list(concrete.traverse())))
                return concrete
        return self._fixed_point(abstract_spec)

    def _fixed_point(self, abstract_spec):
        spec = abstract_spec.copy()
        # Remember which compilers the *user* pinned: a defaulted compiler
        # may be silently re-chosen if a feature requirement (§4.5)
        # activates later; an explicit one may not.
        for node in spec.traverse():
            node._explicit_compiler = node.compiler is not None

        for iteration in range(MAX_ITERATIONS):
            changed = self._expand_dependencies(spec)
            if self._observing():
                self._emit("expand", iteration=iteration, changed=changed,
                           nodes=sorted(n.name for n in spec.traverse()))
            virtual_changed = self._resolve_virtuals(spec)
            changed |= virtual_changed
            param_changed = self._concretize_parameters(spec)
            changed |= param_changed
            if self._observing():
                self._emit("iteration", iteration=iteration, changed=changed)
            if not changed:
                break
        else:
            raise ConcretizationError(
                "Concretization of %s did not converge after %d iterations"
                % (abstract_spec, MAX_ITERATIONS)
            )

        self._prune_constraint_edges(spec)
        self._stamp_edge_deptypes(spec)
        self._check_cycles(spec)
        self._validate(spec)
        self._stamp_concrete(spec)
        return spec

    # -- helpers ------------------------------------------------------------------
    def _is_virtual(self, name):
        return not self.repo.exists(name) and self.provider_index.is_virtual(name)

    def _nodes(self, spec):
        return {node.name: node for node in spec.traverse()}

    # -- stage 1: dependency expansion ------------------------------------------------
    def _expand_dependencies(self, spec):
        changed = False
        nodes = self._nodes(spec)
        for node in list(nodes.values()):
            if not self.repo.exists(node.name):
                continue  # virtual or unknown; handled elsewhere
            cls = self.repo.get_class(node.name)
            for dep_name, constraints in cls.dependencies.items():
                for dc in constraints:
                    if dc.when is not None and not node.satisfies(dc.when, strict=True):
                        continue
                    changed |= self._merge_dependency(spec, nodes, node, dep_name, dc.spec)
        return changed

    def _merge_dependency(self, spec, nodes, parent, dep_name, constraint):
        """Ensure ``parent`` has an edge to the canonical ``dep_name`` node,
        merged with ``constraint``.  A concrete package already in the DAG
        that *provides* a virtual ``dep_name`` satisfies the edge."""
        changed = False

        # A virtual dependency may already be resolved: some DAG node
        # provides it.  Repoint the edge rather than re-adding the virtual.
        if self._is_virtual(dep_name):
            for candidate in nodes.values():
                if dep_name in candidate.provided_virtuals:
                    if parent.dependencies.get(candidate.name) is not candidate:
                        parent.dependencies[candidate.name] = candidate
                        parent.invalidate_caches()
                        changed = True
                    return changed

        target = nodes.get(dep_name)
        if target is None:
            target = Spec(name=dep_name)
            nodes[dep_name] = target
            changed = True
        if parent.dependencies.get(dep_name) is not target:
            existing = parent.dependencies.get(dep_name)
            if existing is not None and existing is not target:
                target.constrain(existing, deps=False)
            parent.dependencies[dep_name] = target
            parent.invalidate_caches()
            changed = True
        try:
            changed |= target.constrain(constraint, deps=False)
            if constraint.compiler is not None:
                target._explicit_compiler = True
        except UnsatisfiableSpecError as e:
            raise ConcretizationError(
                "Conflicting constraints on %r (while expanding dependencies "
                "of %r): %s" % (dep_name, parent.name, e)
            ) from e
        # depends_on('a ^b@2') style nested constraints apply to the DAG too.
        for sub_name, sub in constraint.dependencies.items():
            changed |= self._merge_dependency(spec, nodes, target, sub_name, sub)
        return changed

    # -- stage 2: virtual resolution ---------------------------------------------------
    def _resolve_virtuals(self, spec):
        changed = False
        nodes = self._nodes(spec)
        for name, vnode in list(nodes.items()):
            if not self._is_virtual(name):
                continue
            # A package may both provide an interface and (conditionally)
            # depend on it; it can never provide it to *itself*.
            dependents = {
                n.name
                for n in nodes.values()
                if n.dependencies.get(name) is vnode
            }
            chosen = self._choose_provider(vnode, nodes, exclude=dependents)
            self._swap_virtual(spec, vnode, chosen)
            chosen.provided_virtuals.add(name)
            if self._observing():
                self._emit("virtual-resolved", virtual=str(vnode),
                           provider=chosen.name)
            nodes = self._nodes(spec)
            changed = True
        return changed

    def _choose_provider(self, vnode, nodes, exclude=frozenset()):
        """Pick (or reuse) the provider node for a virtual node."""
        candidates = [
            c
            for c in self.provider_index.providers_for(vnode)
            if c.name not in exclude
        ]
        if not candidates:
            raise NoBuildableProviderError(vnode)
        ordered = self.policy.order_providers(vnode.name, candidates)

        # Nodes already in the DAG whose package *could* provide this
        # virtual (a user-forced ^mvapich2, or a provider pulled in by
        # another dependent) take precedence over policy...
        forced = [
            n
            for n in nodes.values()
            if n is not vnode
            and self.repo.exists(n.name)
            and any(
                p.spec.name == vnode.name
                for p in self.repo.get_class(n.name).provided
            )
        ]
        if forced:
            for candidate in ordered:
                for existing in forced:
                    if existing.name == candidate.name and existing.intersects(candidate):
                        existing.constrain(candidate, deps=False)
                        return existing
            # ...but a forced provider that cannot satisfy the constraint
            # is a conflict the user must resolve (§3.4: "Spack will stop
            # and notify the user"), not something to silently route around.
            raise ConcretizationError(
                "%s cannot provide %s (required constraints conflict)"
                % (", ".join(sorted(n.name for n in forced)), vnode)
            )

        for candidate in ordered:
            fresh = Spec(name=candidate.name)
            try:
                fresh.constrain(candidate, deps=False)
                return fresh
            except UnsatisfiableSpecError:
                continue
        raise NoBuildableProviderError(vnode)

    def _swap_virtual(self, spec, vnode, provider):
        """Repoint every edge aimed at ``vnode`` to ``provider``."""
        for node in spec.traverse():
            if node.dependencies.get(vnode.name) is vnode:
                del node.dependencies[vnode.name]
                node.dependencies[provider.name] = provider
                node.invalidate_caches()

    # -- stage 3: parameter concretization ------------------------------------------------
    def _concretize_parameters(self, spec):
        changed = False
        root = spec
        for node in spec.traverse():
            if not self.repo.exists(node.name):
                continue
            cls = self.repo.get_class(node.name)
            changed |= self._apply_external(node)
            changed |= self._concretize_version(node, cls)
            changed |= self._concretize_compiler(node, root, cls)
            changed |= self._concretize_variants(node, cls)
            changed |= self._concretize_architecture(node, root)
        return changed

    def _apply_external(self, node):
        if node.external is not None:
            return False
        external = self.config.external_for(node.name)
        if external is None:
            return False
        ext_spec_string, prefix = external
        ext_spec = Spec(ext_spec_string)
        if node.intersects(ext_spec):
            node.constrain(ext_spec, deps=False)
            node.external = prefix
            return True
        return False

    def _concretize_version(self, node, cls):
        if node.versions.concrete is not None:
            return False
        chosen = self.policy.choose_version(node.name, cls.versions, node.versions)
        if chosen is None:
            raise NoSatisfyingVersionError(node.name, node.versions)
        node.versions = VersionList([chosen])
        node.invalidate_caches()
        return True

    def _active_compiler_requirements(self, node, cls):
        """Feature requirements whose ``when`` predicate holds (§4.5)."""
        return [
            feature
            for feature, when in cls.compiler_requirements
            if when is None or node.satisfies(when, strict=True)
        ]

    def _concretize_compiler(self, node, root, cls):
        changed = False
        requirements = self._active_compiler_requirements(node, cls)
        if node.compiler is None:
            parent = root.compiler if node is not root else None
            cspec = self.policy.choose_compiler(
                self.compilers, parent, requirements=requirements
            )
            if cspec is None:
                raise ConcretizationError(
                    "No registered compiler can build %s (requires %s)"
                    % (node.name, ", ".join(map(str, requirements)) or "any")
                )
            node.compiler = cspec.copy()
            node.invalidate_caches()
            changed = True
        # Always resolve through the registry: ``%gcc@4.7`` means "the
        # best *registered* gcc in the 4.7 family" (§3.2.3) that also
        # satisfies the node's feature requirements; an unregistered or
        # feature-lacking compiler is an error even for point versions.
        from repro.compilers.registry import CompilerFeatureError

        try:
            best = self.policy.choose_compiler_version(
                self.compilers, node.compiler, requirements=requirements
            )
        except CompilerFeatureError:
            if getattr(node, "_explicit_compiler", False):
                raise
            # the defaulted compiler turned out to lack a feature that a
            # later-activated requirement needs; re-choose from scratch
            cspec = self.policy.choose_compiler(
                self.compilers, None, requirements=requirements
            )
            if cspec is None:
                raise
            node.compiler = cspec.copy()
            node.invalidate_caches()
            changed = True
            best = self.policy.choose_compiler_version(
                self.compilers, node.compiler, requirements=requirements
            )
        if node.compiler.versions.concrete != best.version:
            node.compiler.versions = VersionList([best.version])
            node.invalidate_caches()
            changed = True
        return changed

    def _concretize_variants(self, node, cls):
        changed = False
        for vname, variant in cls.variants.items():
            if vname not in node.variants:
                node.variants[vname] = self.policy.choose_variant(node.name, variant)
                node.invalidate_caches()
                changed = True
        return changed

    def _concretize_architecture(self, node, root):
        if node.architecture is not None:
            return False
        parent = root.architecture if node is not root else None
        node.architecture = self.policy.choose_architecture(parent)
        node.invalidate_caches()
        return True

    def _edge_justified(self, parent, child):
        """Is parent→child a *declared* relationship (directly named, or
        the child provides a virtual the parent declares)?"""
        if not self.repo.exists(parent.name):
            return False
        cls = self.repo.get_class(parent.name)
        if child.name in cls.dependencies:
            return True
        return any(v in cls.dependencies for v in child.provided_virtuals)

    def _prune_constraint_edges(self, spec):
        """Drop user constraint edges, keep only declared dependencies.

        The spec syntax lets users constrain *any* package in the DAG from
        the root (Figure 2c's ``mpileaks ... ^libelf@0.8.11`` — libelf is
        three levels down).  After normalization those constraints have
        been merged into the canonical nodes; the leftover root edges are
        not real dependencies and must not affect the DAG's hash.  A
        pruned target that is then unreachable was never a dependency at
        all — that is a user error (§3.2.3's "must only know that
        mpileaks depends on callpath" has limits: the package must be
        *somewhere* in the DAG).
        """
        from repro.spec.errors import InvalidDependencyError

        pruned = []
        for node in list(spec.traverse()):
            for name, child in list(node.dependencies.items()):
                if not self._edge_justified(node, child):
                    del node.dependencies[name]
                    node.invalidate_caches()
                    pruned.append(child)
        if not pruned:
            return
        remaining = {n.name for n in spec.traverse()}
        for child in pruned:
            if child.name not in remaining:
                raise InvalidDependencyError(
                    "Package %s does not depend on %s"
                    % (spec.name, child.name)
                )

    def _stamp_edge_deptypes(self, spec):
        """Re-type every surviving edge from its package declarations.

        Edges accumulate with the default ``("build", "link")`` type
        during expansion — user ``^`` constraints, virtual-provider
        swaps, and the backtracking solver's trial providers all create
        untyped edges.  Once the DAG has converged, each parent→child
        edge's types are exactly the union of the *active* declarations
        (``when=`` satisfied) naming the child directly or through a
        virtual it provides.  Run after pruning so only justified edges
        are stamped; idempotent, so re-concretizing an already-concrete
        spec leaves hashes unchanged.
        """
        for node in spec.traverse():
            if not self.repo.exists(node.name):
                continue
            cls = self.repo.get_class(node.name)
            for name, child in node.dependencies.items():
                deptypes = frozenset()
                for dc_name in (child.name, *sorted(child.provided_virtuals)):
                    for dc in cls.dependencies.get(dc_name, ()):
                        if dc.when is not None and not node.satisfies(
                            dc.when, strict=True
                        ):
                            continue
                        deptypes |= dc.deptypes
                if deptypes:
                    node.dependencies.set_deptypes(name, deptypes)

    # -- validation -------------------------------------------------------------------------
    def _check_cycles(self, spec):
        """DFS for back edges (the tool disallows circular dependencies)."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {}
        stack = []

        def visit(node):
            color[node.name] = GRAY
            stack.append(node.name)
            for child in node.dependencies.values():
                state = color.get(child.name, WHITE)
                if state == GRAY:
                    cycle = stack[stack.index(child.name):] + [child.name]
                    raise CyclicDependencyError(cycle)
                if state == WHITE:
                    visit(child)
            stack.pop()
            color[node.name] = BLACK

        visit(spec)

    def _validate(self, spec):
        for node in spec.traverse():
            if self._is_virtual(node.name):
                raise ConcretizationError(
                    "Virtual %r survived concretization of %s" % (node.name, spec)
                )
            if not self.repo.exists(node.name):
                raise UnknownPackageError(node.name, context=spec.name)
            cls = self.repo.get_class(node.name)

            for vname in node.variants:
                if vname not in cls.variants:
                    raise UnknownVariantError(node.name, vname)
            if node.versions.concrete is None:
                raise ConcretizationError(
                    "Version of %r is not concrete: @%s" % (node.name, node.versions)
                )
            if node.compiler is None or not node.compiler.concrete:
                raise ConcretizationError(
                    "Compiler of %r is not concrete" % node.name
                )
            if node.architecture is None:
                raise ConcretizationError(
                    "Architecture of %r is not set" % node.name
                )
            if not self.config.is_buildable(node.name) and node.external is None:
                raise ConcretizationError(
                    "Package %r is not buildable (site policy) and no "
                    "configured external satisfies %s" % (node.name, node)
                )
            self._validate_dependencies(node, cls)
            from repro.package.package import PackageError

            pkg = cls(node)
            try:
                pkg.validate_conflicts()
            except PackageError as e:
                # a declared conflicts() hit is a *concretization* dead
                # end — type it so the backtracking and solver searches
                # (and the differential oracle) can treat it as one
                raise ConflictError(str(e)) from e

    def _validate_dependencies(self, node, cls):
        """Every active depends_on must be satisfied by the resolved edge."""
        for dep_name, constraints in cls.dependencies.items():
            for dc in constraints:
                if dc.when is not None and not node.satisfies(dc.when, strict=True):
                    continue
                if self._is_virtual(dep_name):
                    provider = next(
                        (
                            d
                            for d in node.dependencies.values()
                            if dep_name in d.provided_virtuals
                        ),
                        None,
                    )
                    if provider is None:
                        raise ConcretizationError(
                            "Virtual dependency %r of %r is unresolved"
                            % (dep_name, node.name)
                        )
                    provider_cls = self.repo.get_class(provider.name)
                    if not self.provider_index.satisfies_virtual(
                        provider, dc.spec, provider_cls
                    ):
                        raise ConcretizationError(
                            "Provider %s does not satisfy %s (needed by %s)"
                            % (provider, dc.spec, node.name)
                        )
                else:
                    dep = node.dependencies.get(dep_name)
                    if dep is None:
                        raise ConcretizationError(
                            "Dependency %r of %r missing after concretization"
                            % (dep_name, node.name)
                        )
                    if not dep.satisfies(dc.spec, strict=True):
                        raise ConcretizationError(
                            "Dependency %s does not satisfy %s (needed by %s)"
                            % (dep, dc.spec, node.name)
                        )

    def _stamp_concrete(self, spec):
        for node in spec.traverse():
            node._normal = True
            node._concrete = True
            node._hash = None
            node._rhash = None
        spec.dag_hash()
        spec.runtime_hash()
