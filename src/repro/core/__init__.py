"""The concretizer: abstract spec DAG → concrete build DAG (paper §3.4).

This is the paper's primary contribution.  :class:`Concretizer` implements
the Figure 6 pipeline: intersect user constraints with package-file
constraints, resolve versioned virtual dependencies through the provider
index, fill in unspecified parameters from site/user policies, and iterate
to a fixed point.  The algorithm is greedy — it never backtracks; an
inconsistent first choice raises an error the user resolves by being more
explicit (§4.5).
"""

from repro.core.concretizer import (
    ConcretizationError,
    Concretizer,
    ConflictError,
    CyclicDependencyError,
    NoBuildableProviderError,
    NoSatisfyingVersionError,
    UnknownPackageError,
)
from repro.core.backtracking import BacktrackingConcretizer, BacktrackLimitError
from repro.core.policies import DefaultPolicy
from repro.core.solver import SolverConcretizer, SolverLimitError

__all__ = [
    "Concretizer",
    "BacktrackingConcretizer",
    "BacktrackLimitError",
    "SolverConcretizer",
    "SolverLimitError",
    "DefaultPolicy",
    "ConcretizationError",
    "ConflictError",
    "UnknownPackageError",
    "NoSatisfyingVersionError",
    "NoBuildableProviderError",
    "CyclicDependencyError",
]
