"""The active build's state: what ``configure``/``make`` consult.

A package's ``install(spec, prefix)`` calls module-level build tools
(:mod:`repro.build.shell`).  Those tools need to know *which* build they
belong to — the package, its prefix, the sandboxed environment, the cost
model, the log file.  The installer wraps each build in
:func:`build_context`, which pushes a :class:`BuildContext` onto a
thread-local stack; the shell functions resolve it at call time.  The
stack (rather than a single slot) keeps nested installs — an extension
triggering its extendee's build — well-defined, and a thread-local keeps
concurrent sessions in different threads isolated (DESIGN.md §5's
no-global-mutable-state rule bends here exactly as far as ambient
``configure``/``make`` require).
"""

import contextlib
import threading

from repro.errors import ReproError


class BuildContextError(ReproError):
    """A build tool was invoked outside (or against) an active build."""


class BuildContext:
    """Everything one package build needs at ``install()`` time.

    Parameters mirror what the installer assembles: the package and its
    target ``prefix``, the isolated ``env`` dict (see
    :func:`repro.build.environment.build_environment`), the ``stage``
    holding expanded sources, the virtual-cost ``cost_model`` + ``clock``
    pair (§3.5.3's Figure 10/11 accounting), whether compiler wrappers
    are charged (``use_wrappers``) and whether compilers run as real
    subprocesses (``subprocess_mode``), the open ``build_log`` file, the
    ``platform`` description (extra configure args / target flags), and
    an optional ``telemetry`` hub that the fake build systems emit phase
    spans through.
    """

    def __init__(
        self,
        pkg,
        prefix,
        env,
        stage=None,
        cost_model=None,
        clock=None,
        use_wrappers=True,
        subprocess_mode=False,
        build_log=None,
        platform=None,
        telemetry=None,
    ):
        self.pkg = pkg
        self.prefix = prefix
        self.env = env
        self.stage = stage
        #: this build's *virtual* working directory.  Shell tools and
        #: ``working_dir`` operate on it instead of the process cwd, so
        #: concurrent builds in different threads cannot misdirect each
        #: other's relative paths.
        self.cwd = stage.source_path if stage is not None else None
        self.cost_model = cost_model
        self.clock = clock
        self.use_wrappers = use_wrappers
        self.subprocess_mode = subprocess_mode
        self.build_log = build_log
        self.platform = platform
        self.telemetry = telemetry

        #: set by ``configure``/``cmake``; ``make`` refuses to run without it
        self.configured = False
        #: the full configure/cmake argv, for the build manifest
        self.configure_args = []
        #: object files produced by ``make`` (consumed by the link step)
        self.objects = []
        #: artifacts staged by ``make`` awaiting ``make install``
        self.build_products = {}

    def log(self, message):
        """Append a line to the build log (no-op without one)."""
        if self.build_log is not None:
            self.build_log.write(message.rstrip("\n") + "\n")

    def charge_file_ops(self, n, install=False):
        if self.cost_model is not None and self.clock is not None and n:
            self.cost_model.charge_file_ops(self.clock, n, install=install)

    def charge_compile(self, unit_cost):
        if self.cost_model is not None and self.clock is not None:
            self.cost_model.charge_compile(self.clock, unit_cost, self.use_wrappers)

    def charge_link(self, cost):
        if self.cost_model is not None and self.clock is not None:
            self.cost_model.charge_link(self.clock, cost, self.use_wrappers)

    def __repr__(self):
        return "BuildContext(%s -> %s)" % (self.pkg.name, self.prefix)


_state = threading.local()


def _stack():
    stack = getattr(_state, "stack", None)
    if stack is None:
        stack = _state.stack = []
    return stack


@contextlib.contextmanager
def build_context(ctx):
    """Make ``ctx`` the active build for the duration of the block."""
    stack = _stack()
    stack.append(ctx)
    try:
        yield ctx
    finally:
        stack.pop()


def active_context():
    """The innermost active :class:`BuildContext`; raises outside a build."""
    stack = _stack()
    if not stack:
        raise BuildContextError(
            "No build in progress: configure/make/cmake can only be called "
            "from a package's install() under the installer"
        )
    return stack[-1]


def active_context_or_none():
    """The innermost active :class:`BuildContext`, or None outside a build."""
    stack = _stack()
    return stack[-1] if stack else None
