"""Compiler wrappers: argv rewriting, as a pure function and as scripts.

The paper (§3.5.2): Spack puts ``cc``/``c++``/``f77``/``fc`` wrappers
first on ``PATH``; build systems invoke them as "the compiler", and the
wrapper adds ``-I``/``-L``/``-Wl,-rpath`` flags for every dependency
before delegating to the real compiler.  RPATHs therefore end up in
binaries without any package cooperation, which is what makes installed
artifacts run with an empty environment.

Two consumers share :func:`wrap_compiler_args`:

* the fast in-process build path calls it directly and feeds the result
  to :mod:`repro.build.fakecc`;
* :func:`write_wrappers` generates real executable wrapper *scripts*
  that perform the same rewrite from ``os.environ`` and ``exec`` the
  real (fake-toolchain) compiler — the honest subprocess mode that
  Figure 10/11's wrapper-overhead numbers model.

The information channel is environment variables, exactly as in the
original: ``SPACK_CC`` (the real compiler), ``SPACK_LINK_DEPENDENCIES``
(colon-separated prefixes of the link-edge closure — the set that gets
``-I``/``-L``/``-Wl,-rpath`` flags; falls back to the all-dependency
``SPACK_DEPENDENCIES`` for callers predating typed edges),
``SPACK_PREFIX`` (the install prefix whose ``lib`` also gets an RPATH),
and ``SPACK_TARGET_FLAGS`` (per-architecture flags from
:mod:`repro.platforms`).
"""

import os
import stat
import sys

#: wrapper script names by language slot (cc/cxx/f77/fc), as on PATH
WRAPPER_NAMES = {"cc": "cc", "cxx": "c++", "f77": "f77", "fc": "fc"}

#: environment variable carrying the real compiler for each slot
_REAL_COMPILER_VAR = {"cc": "SPACK_CC", "cxx": "SPACK_CXX", "f77": "SPACK_F77", "fc": "SPACK_FC"}


def wrap_compiler_args(argv, env, slot="cc"):
    """Rewrite one compiler invocation's argv (the wrapper's whole job).

    ``argv[0]`` is replaced with the real compiler from the environment;
    target flags, dependency ``-I`` flags and — for link lines —
    dependency ``-L``/``-Wl,-rpath`` flags plus the install prefix's
    RPATH are injected ahead of the original arguments.  Pure: no
    filesystem or process access, so its real in-process cost can be
    measured honestly (``simfs.measure_wrapper_overhead``).
    """
    argv = list(argv)
    real = env.get(_REAL_COMPILER_VAR.get(slot, "SPACK_CC")) or env.get("SPACK_CC") or argv[0]
    # headers and link flags come from the *link*-edge closure only —
    # build-only tool prefixes (on PATH, in SPACK_DEPENDENCIES) must not
    # end up in RPATHs, or binaries would differ with their build tools
    link_deps = env.get("SPACK_LINK_DEPENDENCIES")
    if link_deps is None:
        link_deps = env.get("SPACK_DEPENDENCIES", "")
    deps = [p for p in link_deps.split(os.pathsep) if p]
    prefix = env.get("SPACK_PREFIX")
    target_flags = env.get("SPACK_TARGET_FLAGS", "").split()

    injected = [real]
    injected.extend(target_flags)
    for dep in deps:
        injected.append("-I%s" % os.path.join(dep, "include"))
    if "-c" not in argv:  # a link line: library search paths + RPATHs
        for dep in deps:
            lib_dir = os.path.join(dep, "lib")
            injected.append("-L%s" % lib_dir)
            injected.append("-Wl,-rpath,%s" % lib_dir)
        if prefix:
            injected.append("-Wl,-rpath,%s" % os.path.join(prefix, "lib"))
    injected.extend(argv[1:])
    return injected


_WRAPPER_TEMPLATE = '''#!%(python)s
"""Spack-style compiler wrapper (generated; slot: %(slot)s)."""
import os
import sys

sys.path.insert(0, %(src_path)r)

from repro.build.wrappers import wrap_compiler_args

argv = wrap_compiler_args([%(slot)r] + sys.argv[1:], os.environ, slot=%(slot)r)
os.execv(argv[0], argv)
'''


def write_wrappers(directory):
    """Write executable wrapper scripts; returns ``{slot: path}``.

    The scripts carry an absolute interpreter and an absolute
    ``sys.path`` entry so they run under the sandboxed build environment
    (which deliberately inherits nothing from the caller).
    """
    os.makedirs(directory, exist_ok=True)
    src_path = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    paths = {}
    for slot, name in WRAPPER_NAMES.items():
        path = os.path.join(directory, name)
        with open(path, "w") as f:
            f.write(
                _WRAPPER_TEMPLATE
                % {"python": sys.executable, "src_path": src_path, "slot": slot}
            )
        os.chmod(path, os.stat(path).st_mode | stat.S_IXUSR | stat.S_IXGRP | stat.S_IXOTH)
        paths[slot] = path
    return paths
