"""The fake compiler both build modes share (DESIGN.md §3).

A "compiler" invocation parses the argv shape real drivers accept —
``-c``, ``-o``, ``-I``, ``-L``, ``-l``, ``-Wl,-rpath,<dir>``,
``-shared`` — and writes JSON artifacts instead of machine code:

* compile (``-c``): a JSON *object file* recording the source unit;
* link: a JSON *library* (``-shared``) or *binary* recording ``needed``
  (from ``-l`` flags, as ``lib<name>.so.json`` sonames) and ``rpaths``
  (from ``-Wl,-rpath`` flags — i.e. whatever the wrappers injected).

This preserves the code path under test: the wrappers really rewrite
argv, RPATHs really end up in the artifact, and the loader really
resolves them.  The same function backs the in-process fast path (called
with an already-wrapped argv) and the generated toolchain *executables*
(:mod:`repro.build.toolchain`), so subprocess mode produces bit-identical
artifacts.
"""

import json
import os


class FakeCompilerError(Exception):
    """Bad argv — mirrors a real driver's usage error (exit status 1)."""


def parse_argv(argv):
    """Split a driver argv into a description of what to do.

    ``argv[0]`` is the compiler itself; its basename becomes the
    ``compiler`` field artifacts record (``gcc-4.9.2``).
    """
    compiler_id = os.path.basename(argv[0]) if argv else "cc"
    action = {
        "compiler": compiler_id,
        "compile": False,
        "shared": False,
        "output": None,
        "inputs": [],
        "include_dirs": [],
        "lib_dirs": [],
        "libs": [],
        "rpaths": [],
        "flags": [],
    }
    args = iter(argv[1:])
    for arg in args:
        if arg == "-c":
            action["compile"] = True
        elif arg == "-shared":
            action["shared"] = True
        elif arg == "-o":
            action["output"] = next(args, None)
        elif arg.startswith("-I"):
            action["include_dirs"].append(arg[2:])
        elif arg.startswith("-L"):
            action["lib_dirs"].append(arg[2:])
        elif arg.startswith("-l"):
            action["libs"].append(arg[2:])
        elif arg.startswith("-Wl,-rpath,"):
            action["rpaths"].append(arg[len("-Wl,-rpath,"):])
        elif arg.startswith("-Wl,") or arg.startswith("-"):
            action["flags"].append(arg)
        else:
            action["inputs"].append(arg)
    if action["output"] is None:
        raise FakeCompilerError("no -o output given")
    if not action["inputs"] and not action["libs"]:
        raise FakeCompilerError("no input files")
    return action


def soname(lib):
    """The artifact filename a ``-l<name>`` flag resolves to."""
    return "lib%s.so.json" % lib


def run(argv):
    """Execute one parsed invocation: write the artifact, return its path."""
    action = parse_argv(argv)
    out = action["output"]
    out_dir = os.path.dirname(out)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    if action["compile"]:
        artifact = {
            "type": "object",
            "sources": [os.path.basename(p) for p in action["inputs"]],
            "compiler": action["compiler"],
            "flags": action["flags"],
            "include_dirs": action["include_dirs"],
        }
    else:
        artifact = {
            "type": "library" if action["shared"] else "binary",
            "needed": sorted(soname(lib) for lib in action["libs"]),
            "rpaths": action["rpaths"],
            "compiler": action["compiler"],
            "objects": len(action["inputs"]),
            "flags": action["flags"],
        }
    with open(out, "w") as f:
        json.dump(artifact, f, indent=1, sort_keys=True)
    return out


def main(argv):
    """Entry point for the generated toolchain executables."""
    try:
        run(argv)
    except (FakeCompilerError, OSError) as e:
        import sys

        print("%s: error: %s" % (os.path.basename(argv[0]), e), file=sys.stderr)
        return 1
    return 0
