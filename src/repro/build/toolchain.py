"""Generate the fake compiler toolchain (§3.2.3's detectable compilers).

``write_toolchain(dir, [("gcc", "4.9.2"), ...])`` writes one real
executable per toolchain binary (``gcc-4.9.2``, ``g++-4.9.2``,
``gfortran-4.9.2``, ``icc-15.0.1``...), named exactly as
``repro.compilers.registry.find_compilers`` detects them.  Each script
delegates to :mod:`repro.build.fakecc`, so subprocess-mode builds spawn
these as real compiler processes while the fast path calls the same code
in-process.
"""

import os
import stat
import sys

from repro.compilers.registry import TOOLCHAIN_BINARIES

_COMPILER_TEMPLATE = '''#!%(python)s
"""Fake %(stem)s %(version)s (generated toolchain; see repro.build.fakecc)."""
import sys

sys.path.insert(0, %(src_path)r)

from repro.build.fakecc import main

sys.exit(main(sys.argv))
'''


def write_toolchain(directory, toolchains):
    """Write every binary of every ``(name, version)`` toolchain.

    Returns the list of executable paths written.  Idempotent: an
    existing toolchain directory is refreshed in place.
    """
    os.makedirs(directory, exist_ok=True)
    src_path = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    written = []
    for name, version in toolchains:
        stems = TOOLCHAIN_BINARIES.get(name)
        if stems is None:
            raise ValueError("Unknown toolchain %r (no binary stems defined)" % name)
        for stem in dict.fromkeys(stems):  # dedup, keep order (gfortran doubles as f77+fc)
            path = os.path.join(directory, "%s-%s" % (stem, version))
            with open(path, "w") as f:
                f.write(
                    _COMPILER_TEMPLATE
                    % {
                        "python": sys.executable,
                        "src_path": src_path,
                        "stem": stem,
                        "version": version,
                    }
                )
            os.chmod(
                path, os.stat(path).st_mode | stat.S_IXUSR | stat.S_IXGRP | stat.S_IXOTH
            )
            written.append(path)
    return written
