"""The build substrate: environment isolation, wrappers, fake toolchain.

This package implements the paper's §3.5 build methodology against the
simulated toolchain (DESIGN.md §3):

* :mod:`repro.build.context` — the active-build state (`BuildContext`)
  that the fake build systems consult;
* :mod:`repro.build.environment` — the isolated build environment
  (``PATH``/``PKG_CONFIG_PATH``/``CMAKE_PREFIX_PATH``/``LD_LIBRARY_PATH``
  plus the ``SPACK_*`` wrapper channel) and the runtime environment used
  by module generation;
* :mod:`repro.build.wrappers` — the compiler wrappers: a pure
  argv-rewriting function shared by the fast in-process path and the
  generated wrapper *scripts* of subprocess mode (§3.5.2);
* :mod:`repro.build.toolchain` — the fake compiler executables
  (``gcc-4.9.2`` et al.) that PATH detection finds (§3.2.3);
* :mod:`repro.build.fakecc` — the compiler implementation both modes
  share: parses ``-c/-o/-I/-L/-l/-Wl,-rpath`` and writes JSON artifacts
  with embedded RPATHs;
* :mod:`repro.build.shell` — fake ``configure``/``make``/``cmake``
  consumed by package ``install()`` recipes;
* :mod:`repro.build.loader` — the "dynamic loader" that resolves a fake
  binary's needed libraries through its RPATHs at "runtime" (§3.5.1).
"""

from repro.build import shell  # noqa: F401  (packages do `from repro.build import shell`)
from repro.build.context import BuildContext, BuildContextError, build_context

__all__ = [
    "BuildContext",
    "BuildContextError",
    "build_context",
    "shell",
]
