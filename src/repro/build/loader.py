"""A fake dynamic loader for the JSON artifacts (the §3.5.2 proof).

Real RPATH semantics, miniaturized: to resolve a binary's ``needed``
libraries, search the binary's own ``rpaths`` first, then RPATHs
inherited from the loading chain, then ``LD_LIBRARY_PATH`` from the
environment — in that order, so an RPATH always beats a hostile
``LD_LIBRARY_PATH`` (the decoy test).  Resolution recurses into each
resolved library's own ``needed``, building the transitive closure
``ldd`` prints.

``load_binary(path, env={})`` with an *empty* environment is the
paper's headline guarantee made executable: an installed binary must
resolve every library through RPATHs alone.
"""

import json
import os

from repro.errors import ReproError


class LoaderError(ReproError):
    """A needed library could not be resolved (a real ld.so error)."""


def _read_artifact(path):
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as e:
        raise LoaderError("Cannot load %s: %s" % (path, e)) from e
    except ValueError as e:
        raise LoaderError("Corrupt artifact %s: %s" % (path, e)) from e


def _env_paths(env):
    if not env:
        return []
    return [p for p in env.get("LD_LIBRARY_PATH", "").split(os.pathsep) if p]


def _resolve_soname(soname, search_dirs):
    for d in search_dirs:
        candidate = os.path.join(d, soname)
        if os.path.isfile(candidate):
            return candidate
    return None


def _resolve(path, env_dirs, inherited_rpaths, resolved, chain):
    """Resolve ``path``'s needed libraries into ``resolved`` (recursive)."""
    artifact = _read_artifact(path)
    own_rpaths = list(artifact.get("rpaths", ()))
    # Inherited RPATHs come after the object's own but before the
    # environment — the ld.so ordering that makes RPATH builds immune to
    # the caller's LD_LIBRARY_PATH.
    search_dirs = own_rpaths + [r for r in inherited_rpaths if r not in own_rpaths]
    for soname in artifact.get("needed", ()):
        if soname in resolved:
            continue
        found = _resolve_soname(soname, search_dirs + env_dirs)
        if found is None:
            raise LoaderError(
                "%s: cannot resolve %s (searched rpaths %s%s)"
                % (
                    " -> ".join(chain + [os.path.basename(path)]),
                    soname,
                    search_dirs,
                    ", LD_LIBRARY_PATH %s" % env_dirs if env_dirs else "",
                )
            )
        resolved[soname] = found
        _resolve(
            found,
            env_dirs,
            search_dirs,
            resolved,
            chain + [os.path.basename(path)],
        )
    return resolved


def load_binary(path, env=None):
    """Simulate loading ``path``; raise :class:`LoaderError` on failure.

    Returns ``{soname: resolved_path}`` for the transitive closure of
    needed libraries.
    """
    if not os.path.isfile(path):
        raise LoaderError("No such binary: %s" % path)
    return _resolve(path, _env_paths(env), [], {}, [])


def ldd(path, env=None):
    """The transitive ``{soname: path}`` map, like ``ldd(1)``."""
    return load_binary(path, env=env)
