"""Build-time and run-time environments for a concrete spec (§3.5.1).

``build_environment`` assembles the *sandboxed* dict a build runs with:
nothing is inherited from the caller's environment (the isolation the
paper leads §3.5 with), dependency prefixes feed ``PATH`` and the
``*_PATH`` discovery variables, and the ``SPACK_*`` channel carries what
the compiler wrappers need (real compiler, dependency prefixes, install
prefix, per-architecture target flags).

``runtime_environment`` produces the
:class:`~repro.util.environment.EnvironmentModifications` that module
files render (§3.5.4): ``PATH``, ``MANPATH``, ``LD_LIBRARY_PATH``,
``PKG_CONFIG_PATH``, ``CMAKE_PREFIX_PATH`` — LD_LIBRARY_PATH included
even though RPATH-built binaries do not need it, because non-RPATH
dependents and build systems do.
"""

import os

from repro.util.environment import EnvironmentModifications


def dependency_prefixes(spec, layout, deptype=None):
    """Ordered ``{name: prefix}`` for every transitive dependency.

    Externals keep their configured prefix (§4.4); everything else
    resolves through the layout.  Post-order, so deeper dependencies come
    first — the order link lines and search paths list them.  ``deptype``
    restricts the traversal to edges of those types (e.g. ``("link",)``
    for the prefixes a link line may reference).
    """
    prefixes = {}
    for node in spec.traverse(order="post", root=False, deptype=deptype):
        prefixes[node.name] = node.external or layout.path_for_spec(node)
    return prefixes


def _path_list(dep_prefixes, *subdir):
    return [os.path.join(p, *subdir) for p in dep_prefixes.values()]


def build_environment(
    node,
    compiler,
    prefix,
    dep_prefixes,
    wrapper_paths=None,
    use_wrappers=True,
    target_flags=(),
    link_prefixes=None,
):
    """The isolated environment dict one package build runs in.

    ``wrapper_paths`` is the ``{slot: script}`` mapping from
    :func:`repro.build.wrappers.write_wrappers` when subprocess mode
    generated real wrapper scripts; without it the in-process fast path
    applies the same rewrite via ``wrap_compiler_args``.  Either way
    ``CC``/``CXX``/``F77``/``FC`` are what the build system calls and
    ``SPACK_*`` is what the wrapper layer consults.

    ``dep_prefixes`` (every dependency) feeds ``PATH`` and the discovery
    variables — a build tool must be runnable.  ``link_prefixes`` (the
    link-edge closure; defaults to ``dep_prefixes``) feeds
    ``SPACK_LINK_DEPENDENCIES``, the set the wrappers turn into
    ``-I``/``-L``/``-Wl,-rpath`` flags: build-only tools never leak into
    installed binaries, which is what makes two specs differing only in
    build deps binary-equivalent (the splice precondition, §6 future
    work).
    """
    real = {
        "cc": compiler.cc or "%s-%s" % (compiler.name, compiler.version),
        "cxx": compiler.cxx or compiler.cc or "%s-%s" % (compiler.name, compiler.version),
        "f77": compiler.f77 or "",
        "fc": compiler.fc or "",
    }
    if link_prefixes is None:
        link_prefixes = dep_prefixes
    env = {
        "SPACK_CC": real["cc"],
        "SPACK_CXX": real["cxx"],
        "SPACK_F77": real["f77"],
        "SPACK_FC": real["fc"],
        "SPACK_COMPILER": "%s-%s" % (compiler.name, compiler.version),
        "SPACK_PREFIX": prefix,
        "SPACK_DEPENDENCIES": os.pathsep.join(dep_prefixes.values()),
        "SPACK_LINK_DEPENDENCIES": os.pathsep.join(link_prefixes.values()),
        "SPACK_TARGET_FLAGS": " ".join(target_flags),
        "SPACK_SPEC": str(node),
    }
    if use_wrappers and wrapper_paths:
        env["CC"] = wrapper_paths.get("cc", real["cc"])
        env["CXX"] = wrapper_paths.get("cxx", real["cxx"])
        env["F77"] = wrapper_paths.get("f77", real["f77"])
        env["FC"] = wrapper_paths.get("fc", real["fc"])
        path_dirs = [os.path.dirname(env["CC"])]
    else:
        env["CC"] = real["cc"]
        env["CXX"] = real["cxx"]
        env["F77"] = real["f77"]
        env["FC"] = real["fc"]
        path_dirs = [os.path.dirname(real["cc"])] if os.path.dirname(real["cc"]) else []

    path_dirs.extend(_path_list(dep_prefixes, "bin"))
    env["PATH"] = os.pathsep.join(path_dirs)
    env["PKG_CONFIG_PATH"] = os.pathsep.join(_path_list(link_prefixes, "lib", "pkgconfig"))
    env["CMAKE_PREFIX_PATH"] = os.pathsep.join(dep_prefixes.values())
    env["LD_LIBRARY_PATH"] = os.pathsep.join(_path_list(link_prefixes, "lib"))
    return env


def runtime_environment(spec, prefix, dep_prefixes):
    """Environment modifications to *use* an installed spec (§3.5.4)."""
    mods = EnvironmentModifications()
    mods.prepend_path("PATH", os.path.join(prefix, "bin"))
    mods.prepend_path("MANPATH", os.path.join(prefix, "share", "man"))
    mods.prepend_path("LD_LIBRARY_PATH", os.path.join(prefix, "lib"))
    mods.prepend_path("PKG_CONFIG_PATH", os.path.join(prefix, "lib", "pkgconfig"))
    mods.prepend_path("CMAKE_PREFIX_PATH", prefix)
    for dep_prefix in dep_prefixes.values():
        mods.append_path("LD_LIBRARY_PATH", os.path.join(dep_prefix, "lib"))
    return mods
