"""Views: projections from concretized specs to readable link names.

"Spack's views are a projection from points in a high-dimensional space
(concretized specs, which fully specify all parameters) to points in a
lower-dimensional space (link names, which may only contain a few
parameters).  Several installations may map to the same link." (§4.3.1)

A :class:`ViewRule` pairs a match query with a parameterized link
template like ``/opt/${PACKAGE}-${VERSION}-${MPINAME}``.  When several
installed specs project to one link, the conflict is resolved by a
well-defined preference order: site/user ``compiler_order`` first, then
newer versions, then provider preference, then a deterministic hash
tie-break — "by default, Spack prefers newer versions of packages
compiled with newer compilers to older packages built with older
compilers", overridable in configuration.
"""

import os

from repro.core.policies import _negate
from repro.errors import ReproError
from repro.spec.spec import Spec
from repro.util.filesystem import mkdirp


def _inverted_version_key(version):
    """Sort key putting *newer* versions first."""
    if version is None:
        return ()
    return tuple((-k[0], _negate(k[1])) for k in version.key)


class ViewError(ReproError):
    """View rule or linking problems."""


def preference_key(spec, config):
    """Sort key: *smaller is preferred*.

    Order: position in ``compiler_order`` (unlisted compilers come after
    all listed ones), newer package version first, newer compiler version
    first, then DAG hash for determinism.
    """
    order = config.compiler_order()

    def compiler_rank():
        if spec.compiler is None:
            return len(order) + 1
        for index, entry in enumerate(order):
            from repro.spec.spec import CompilerSpec

            want = CompilerSpec(entry)
            if spec.compiler.satisfies(want):
                return index
        return len(order)

    version_key = _inverted_version_key(spec.versions.highest())
    comp_key = _inverted_version_key(
        spec.compiler.versions.highest() if spec.compiler is not None else None
    )
    return (compiler_rank(), version_key, comp_key, spec.dag_hash())


class ViewRule:
    """One projection rule: which specs it covers and what gets linked.

    ``link_template`` (if given) links the whole install prefix;
    ``file_links`` maps link-name templates to prefix-relative files —
    the paper's "views can also be used to create symbolic links to
    specific executables or libraries", e.g.::

        ViewRule(match="gcc", file_links={"/bin/gcc${VERSION}": "bin/gcc"})
    """

    def __init__(self, link_template=None, match="", name=None, file_links=None):
        if link_template is None and not file_links:
            raise ViewError("A view rule needs a link template or file links")
        self.link_template = link_template
        self.file_links = dict(file_links or {})
        self.match = match  # spec query string; '' matches everything
        self.name = name or link_template or next(iter(self.file_links))

    def matches(self, spec):
        if not self.match:
            return True
        query = Spec(self.match)
        if query.name is not None and query.name != spec.name:
            return False
        return spec.satisfies(query, strict=True)

    def projections(self, spec, prefix):
        """Yield ``(rendered_link, target_path)`` pairs for one spec."""
        if self.link_template is not None:
            yield spec.format(self.link_template), prefix
        for template, rel_source in self.file_links.items():
            yield spec.format(template), os.path.join(prefix, rel_source)

    @classmethod
    def from_config(cls, entry):
        if isinstance(entry, str):
            return cls(entry)
        return cls(
            entry.get("link"),
            match=entry.get("match", ""),
            name=entry.get("name"),
            file_links=entry.get("files"),
        )


class View:
    """A directory of symlinks governed by rules, kept consistent with
    the install database."""

    def __init__(self, session, root, rules=None):
        self.session = session
        self.root = os.path.abspath(root)
        if rules is None:
            rules = [
                ViewRule.from_config(e)
                for e in session.config.get("views", "rules", default=[])
            ]
        self.rules = list(rules)

    def add_rule(self, rule):
        self.rules.append(rule)

    # -- core ----------------------------------------------------------------
    def _winner(self, candidates):
        """Pick (spec, target) with the most-preferred spec."""
        return min(
            candidates, key=lambda st: preference_key(st[0], self.session.config)
        )

    def _point_link(self, link_path, target):
        mkdirp(os.path.dirname(link_path))
        if os.path.islink(link_path):
            os.unlink(link_path)
        elif os.path.exists(link_path):
            raise ViewError("View target exists and is not a link: %s" % link_path)
        os.symlink(target, link_path)

    # -- public -------------------------------------------------------------------
    def refresh(self):
        """(Re)compute every link from the database and the rules.

        Returns {link_path: winning spec}.
        """
        links = {}
        for record in self.session.db.all_records():
            spec = record.spec
            prefix = spec.external or self.session.store.layout.path_for_spec(spec)
            for rule in self.rules:
                if not rule.matches(spec):
                    continue
                for rendered, target in rule.projections(spec, prefix):
                    link_path = os.path.join(self.root, rendered.lstrip("/"))
                    links.setdefault(link_path, []).append((spec, target))
        result = {}
        for link_path, candidates in links.items():
            winner_spec, target = self._winner(candidates)
            self._point_link(link_path, target)
            result[link_path] = winner_spec
        self._prune_stale(set(links))
        return result

    def _prune_stale(self, valid_links):
        if not os.path.isdir(self.root):
            return
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for entry in filenames:
                full = os.path.join(dirpath, entry)
                if os.path.islink(full) and full not in valid_links:
                    os.unlink(full)

    def resolve(self, link_rel):
        """Where a view link currently points (its install prefix)."""
        full = os.path.join(self.root, link_rel.lstrip("/"))
        if not os.path.islink(full):
            raise ViewError("No such view link: %s" % full)
        return os.readlink(full)

    def links(self):
        found = {}
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for entry in filenames:
                full = os.path.join(dirpath, entry)
                if os.path.islink(full):
                    found[os.path.relpath(full, self.root)] = os.readlink(full)
        return found
