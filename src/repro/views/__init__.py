"""Filesystem views: human-readable symlink layouts (paper §4.3.1)."""

from repro.views.view import View, ViewError, ViewRule, preference_key

__all__ = ["View", "ViewRule", "ViewError", "preference_key"]
