"""repro — a from-scratch reproduction of the Spack package manager (SC '15).

This library reimplements the system described in Gamblin et al., *The Spack
Package Manager: Bringing Order to HPC Software Chaos* (SC '15):

* the recursive **spec syntax** for constraining builds
  (:mod:`repro.spec`),
* **versioned virtual dependencies** and provider resolution
  (:mod:`repro.repo`),
* the greedy, fixed-point **concretization** algorithm
  (:mod:`repro.core`),
* an **install environment** with compiler wrappers and RPATH enforcement
  (:mod:`repro.build`, :mod:`repro.store`),
* plus environment modules, filesystem views, language-extension
  activation, and a command line (:mod:`repro.modules`, :mod:`repro.views`,
  :mod:`repro.extensions`, :mod:`repro.cli`).

Quickstart::

    from repro import Session, Spec

    session = Session.create(root="/tmp/demo")          # ephemeral store
    spec = Spec("mpileaks@1.0 ^mvapich2@1.9")           # abstract spec
    concrete = session.concretize(spec)                 # resolve everything
    session.install(concrete)                           # build bottom-up

The public API is re-exported here; see README.md for a tour.
"""

from repro.errors import ReproError
from repro.version import Version, VersionList, VersionRange, ver

__version__ = "1.0.0"

# Heavier modules are imported lazily so that `import repro` stays cheap and
# the low-level subpackages (version, util) remain importable on their own.
_LAZY = {
    "Spec": ("repro.spec.spec", "Spec"),
    "CompilerSpec": ("repro.spec.spec", "CompilerSpec"),
    "Session": ("repro.session", "Session"),
}


def __getattr__(name):
    if name in _LAZY:
        import importlib

        module, attr = _LAZY[name]
        return getattr(importlib.import_module(module), attr)
    raise AttributeError("module %r has no attribute %r" % (__name__, name))

__all__ = [
    "ReproError",
    "Version",
    "VersionRange",
    "VersionList",
    "ver",
    "Spec",
    "CompilerSpec",
    "Session",
    "__version__",
]
