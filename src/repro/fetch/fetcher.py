"""Download + verify + discover versions against the (mock) web."""

import hashlib
import re

from repro.errors import ReproError
from repro.version import Version
from repro.version.url import wildcard_version_pattern


class FetchError(ReproError):
    """Download failed (missing URL, no url attribute, ...)."""


class ChecksumError(FetchError):
    """Downloaded bytes do not match the declared MD5 (§3.2.3)."""

    def __init__(self, url, expected, actual):
        super().__init__(
            "Checksum mismatch for %s" % url,
            long_message="expected md5 %s, got %s" % (expected, actual),
        )
        self.expected = expected
        self.actual = actual


class Fetcher:
    """Fetches package tarballs — mirrors first, then the web — and
    scrapes listing pages for versions."""

    def __init__(self, web, mirrors=(), telemetry=None):
        self.web = web
        self.mirrors = list(mirrors)
        #: optional session Telemetry hub (fetch spans, hit/miss counters)
        self.telemetry = telemetry

    def add_mirror(self, mirror):
        self.mirrors.append(mirror)

    def fetch(self, pkg, version):
        """Return verified tarball bytes for ``pkg`` at ``version``.

        Mirrors are consulted in order before the network (air-gapped
        operation).  The URL comes from the package's per-version
        override or from extrapolation (§3.2.3); when the package
        declares a checksum for this version it is verified — wherever
        the bytes came from — otherwise they are accepted unverified
        (the paper's "bleeding-edge versions" case).
        """
        from repro.telemetry.hub import NULL_SPAN

        hub = self.telemetry
        span = (
            hub.span("fetch", package=pkg.name, version=str(version))
            if hub is not None
            else NULL_SPAN
        )
        with span:
            content, source = None, None
            for mirror in self.mirrors:
                content = mirror.fetch(pkg.name, version)
                if content is not None:
                    source = mirror.archive_path(pkg.name, version)
                    break
            if hub is not None:
                # a mirror satisfying the request is the local-cache hit
                hub.count("fetch.cache_hit" if content is not None else "fetch.cache_miss")
            if content is None:
                url = pkg.url_for_version(version)
                source = url
                from repro.fetch.mockweb import NotOnWebError

                try:
                    content = self.web.get(url)
                except NotOnWebError as e:
                    if hub is not None:
                        hub.count("fetch.errors")
                    raise FetchError(
                        "Cannot fetch %s@%s: %s" % (pkg.name, version, e.message)
                    ) from e
            span.set(source=source, bytes=len(content))
            expected = pkg.checksum_for(version)
            if expected:
                actual = hashlib.md5(content).hexdigest()
                if actual != expected:
                    if hub is not None:
                        hub.count("fetch.checksum_mismatch")
                    raise ChecksumError(source, expected, actual)
                if hub is not None:
                    hub.count("fetch.checksum_verified")
            elif hub is not None:
                hub.count("fetch.unverified")
            return content

    def available_versions(self, pkg):
        """Scrape the package's listing page for version-shaped links.

        Implements "Spack uses the same model to scrape webpages and to
        find new versions as they become available".
        """
        if pkg.url is None:
            return []
        import posixpath

        listing_url = posixpath.dirname(pkg.url) + "/"
        from repro.fetch.mockweb import NotOnWebError

        try:
            page = self.web.get(listing_url).decode(errors="replace")
        except NotOnWebError:
            return []
        pattern = wildcard_version_pattern(pkg.url)
        found = set()
        for match in re.finditer(r'href="([^"]+)"', page):
            m = pattern.search(match.group(1))
            if m:
                found.add(Version(m.group(1)))
        return sorted(found, reverse=True)
