"""Download + verify + discover versions against the (mock) web.

Transient failures (a flaky mirror, a 503 from the mock web) are
retried with bounded exponential backoff; permanent ones (404, checksum
mismatch) are not.  ``deterministic_backoff`` pins the delay schedule —
no jitter — so tests and reproducible runs see identical timing
decisions.  With a :class:`~repro.fetch.cache.FetchCache` attached,
downloads are published atomically and deduplicated per URL, which is
what makes concurrent fetches of a shared dependency safe under the
DAG-parallel scheduler.
"""

import hashlib
import random
import re
import time

from repro.errors import ReproError
from repro.version import Version
from repro.version.url import wildcard_version_pattern


class FetchError(ReproError):
    """Download failed (missing URL, no url attribute, ...)."""


class ChecksumError(FetchError):
    """Downloaded bytes do not match the declared checksum (§3.2.3)."""

    def __init__(self, url, expected, actual, algorithm="md5"):
        super().__init__(
            "Checksum mismatch for %s" % url,
            long_message="expected %s %s, got %s" % (algorithm, expected, actual),
        )
        self.expected = expected
        self.actual = actual
        self.algorithm = algorithm


#: declared-digest hex length -> hashlib constructor.  Packages carry one
#: digest string per version; its length says which algorithm verifies it
#: (legacy md5 declarations keep working next to sha256 ones).
DIGEST_ALGORITHMS = {32: ("md5", hashlib.md5), 64: ("sha256", hashlib.sha256)}


#: default number of retries after the first attempt of a transient fetch
DEFAULT_RETRIES = 2

#: default base delay of the exponential backoff schedule (seconds)
DEFAULT_RETRY_DELAY = 0.05


class Fetcher:
    """Fetches package tarballs — mirrors first, then the web — and
    scrapes listing pages for versions."""

    def __init__(
        self,
        web,
        mirrors=(),
        telemetry=None,
        cache=None,
        retries=DEFAULT_RETRIES,
        retry_delay=DEFAULT_RETRY_DELAY,
        deterministic_backoff=False,
        faults=None,
    ):
        self.web = web
        self.mirrors = list(mirrors)
        #: optional session Telemetry hub (fetch spans, hit/miss counters)
        self.telemetry = telemetry
        #: optional FetchCache: atomic, per-URL-locked download cache
        self.cache = cache
        #: optional session FaultInjector (fetch.transient/fetch.permanent)
        self.faults = faults
        #: transient-error retries per source (after the first attempt)
        self.retries = int(retries)
        #: backoff base: attempt *n* waits ``retry_delay * 2**n`` seconds
        self.retry_delay = float(retry_delay)
        #: True: jitterless schedule (tests, reproducible runs)
        self.deterministic_backoff = deterministic_backoff

    def add_mirror(self, mirror):
        self.mirrors.append(mirror)

    def fetch(self, pkg, version):
        """Return verified tarball bytes for ``pkg`` at ``version``.

        Mirrors are consulted in order before the network (air-gapped
        operation), then the fetch cache, then the web.  The URL comes
        from the package's per-version override or from extrapolation
        (§3.2.3); when the package declares a checksum for this version
        it is verified — wherever the bytes came from — otherwise they
        are accepted unverified (the paper's "bleeding-edge versions"
        case).  Only web downloads that pass verification are published
        into the cache.
        """
        from repro.telemetry.hub import NULL_SPAN

        hub = self.telemetry
        span = (
            hub.span("fetch", package=pkg.name, version=str(version))
            if hub is not None
            else NULL_SPAN
        )
        with span:
            content, source = None, None
            for mirror in self.mirrors:
                content = self._mirror_fetch(mirror, pkg, version)
                if content is not None:
                    source = mirror.archive_path(pkg.name, version)
                    break
            if hub is not None:
                # a mirror satisfying the request is the local-cache hit
                hub.count("fetch.cache_hit" if content is not None else "fetch.cache_miss")
            if content is not None:
                span.set(source=source, bytes=len(content))
                self._verify(pkg, version, content, source)
                return content

            url = pkg.url_for_version(version)
            if self.cache is None:
                content = self._web_get(url, pkg, version)
                span.set(source=url, bytes=len(content))
                self._verify(pkg, version, content, url)
                return content

            # Cache path: the per-URL lock collapses concurrent fetches of
            # a shared dependency into one download — the first holder
            # downloads, verifies, and publishes; the rest hit the cache.
            # The declared checksum is part of the cache key, so a package
            # re-pointing its md5 at the same URL misses cleanly instead of
            # being served the previously verified bytes.
            digest = pkg.checksum_for(version)
            with self.cache.url_lock(url, digest):
                content = self.cache.get(url, digest)
                if content is not None:
                    if hub is not None:
                        hub.count("fetch.disk_cache_hit")
                    span.set(source=self.cache.path_for(url, digest),
                             bytes=len(content))
                    self._verify(pkg, version, content, url)
                    return content
                content = self._web_get(url, pkg, version)
                span.set(source=url, bytes=len(content))
                self._verify(pkg, version, content, url)
                self.cache.put(url, content, digest)
                return content

    # -- acquisition with retry -----------------------------------------------
    def _backoff_sleep(self, attempt):
        """Sleep out attempt *n*'s backoff slot; returns the delay used."""
        delay = self.retry_delay * (2 ** attempt)
        if not self.deterministic_backoff:
            delay *= 0.5 + random.random()  # jitter: desynchronize herds
        if delay > 0:
            time.sleep(delay)
        return delay

    def _mirror_fetch(self, mirror, pkg, version):
        """One mirror lookup, retrying transient I/O errors.

        A mirror that keeps failing is treated as a miss (the next
        source is consulted) rather than aborting the install — mirrors
        are an availability optimization, not an authority.
        """
        from repro.fetch.mockweb import TransientWebError

        hub = self.telemetry
        for attempt in range(self.retries + 1):
            try:
                return mirror.fetch(pkg.name, version)
            except (OSError, TransientWebError):
                if hub is not None:
                    hub.count("fetch.mirror_errors")
                if attempt >= self.retries:
                    return None
                if hub is not None:
                    hub.count("fetch.retries")
                self._backoff_sleep(attempt)
        return None

    def _web_get(self, url, pkg, version):
        """GET ``url``, retrying transient errors with backoff.

        404s (:class:`NotOnWebError`) are permanent and raised
        immediately; transient errors retry ``self.retries`` times
        before giving up.
        """
        from repro.fetch.mockweb import NotOnWebError, TransientWebError

        hub = self.telemetry
        attempt = 0
        while True:
            try:
                # fault sites: inside the try so injected errors exercise
                # the very same retry/propagation paths real ones take
                if self.faults is not None:
                    self.faults.hit("fetch.transient", target=pkg.name)
                    self.faults.hit("fetch.permanent", target=pkg.name)
                return self.web.get(url)
            except NotOnWebError as e:
                if hub is not None:
                    hub.count("fetch.errors")
                raise FetchError(
                    "Cannot fetch %s@%s: %s" % (pkg.name, version, e.message)
                ) from e
            except TransientWebError as e:
                if attempt >= self.retries:
                    if hub is not None:
                        hub.count("fetch.errors")
                    raise FetchError(
                        "Cannot fetch %s@%s after %d attempts: %s"
                        % (pkg.name, version, attempt + 1, e.message)
                    ) from e
                if hub is not None:
                    hub.count("fetch.retries")
                self._backoff_sleep(attempt)
                attempt += 1

    def _verify(self, pkg, version, content, source):
        """Check declared digests (md5 or sha256, picked by hex length);
        count verified/unverified/mismatch."""
        hub = self.telemetry
        expected = pkg.checksum_for(version)
        if expected:
            name, algorithm = DIGEST_ALGORITHMS.get(
                len(expected), DIGEST_ALGORITHMS[32]
            )
            actual = algorithm(content).hexdigest()
            if actual != expected:
                if hub is not None:
                    hub.count("fetch.checksum_mismatch")
                raise ChecksumError(source, expected, actual, algorithm=name)
            if hub is not None:
                hub.count("fetch.checksum_verified")
        elif hub is not None:
            hub.count("fetch.unverified")

    def available_versions(self, pkg):
        """Scrape the package's listing page for version-shaped links.

        Implements "Spack uses the same model to scrape webpages and to
        find new versions as they become available".
        """
        if pkg.url is None:
            return []
        import posixpath

        listing_url = posixpath.dirname(pkg.url) + "/"
        from repro.fetch.mockweb import NotOnWebError

        try:
            page = self.web.get(listing_url).decode(errors="replace")
        except NotOnWebError:
            return []
        pattern = wildcard_version_pattern(pkg.url)
        found = set()
        for match in re.finditer(r'href="([^"]+)"', page):
            m = pattern.search(match.group(1))
            if m:
                found.add(Version(m.group(1)))
        return sorted(found, reverse=True)
