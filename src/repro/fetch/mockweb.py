"""A deterministic in-memory web (DESIGN.md §3 substitution for the
internet).

Serves two kinds of resources:

* **tarballs** — generated deterministically from (package, version), so
  their MD5 checksums are stable across machines and sessions.  Package
  files declare ``version('1.0', mock_checksum('pkg', '1.0'))`` and the
  fetcher *really verifies* the digest, exercising the paper's
  download-verification path (Figure 1's MD5 arguments).
* **listing pages** — HTML-ish text with links to every registered
  version, so the version-scraping path ("Spack uses the same model to
  scrape webpages and find new versions") works end to end.

Failure injection: ``corrupt(url)`` makes a URL serve altered bytes so
tests can assert checksum verification catches tampering.
"""

import hashlib
import json
import posixpath

from repro.errors import ReproError


class NotOnWebError(ReproError):
    """404: nothing registered at this URL."""

    def __init__(self, url):
        super().__init__("URL not found on mock web: %s" % url)
        self.url = url


class TransientWebError(ReproError):
    """503: the URL exists but this attempt failed (flaky mirror/CDN).

    The fetcher retries these with bounded exponential backoff;
    :class:`NotOnWebError` by contrast is permanent and never retried.
    """

    def __init__(self, url, remaining):
        super().__init__(
            "Transient error fetching %s (%d injected failures left)"
            % (url, remaining)
        )
        self.url = url


def mock_tarball(name, version):
    """Deterministic 'tarball' bytes for a package version.

    The payload is a JSON description of the source tree the stage will
    expand; a pseudo-random pad derived from (name, version) makes each
    artifact unique and checksum-meaningful.
    """
    seed = hashlib.sha256(("%s@%s" % (name, version)).encode()).hexdigest()
    payload = {
        "kind": "mock-source-tarball",
        "name": str(name),
        "version": str(version),
        "pad": seed,
    }
    return json.dumps(payload, sort_keys=True).encode()


def mock_checksum(name, version):
    """MD5 of :func:`mock_tarball` — what corpus package files declare."""
    return hashlib.md5(mock_tarball(name, version)).hexdigest()


class MockWeb:
    """URL → bytes store with listing pages."""

    def __init__(self):
        self._pages = {}
        self._corrupted = set()
        self._flaky = {}

    # -- registration ----------------------------------------------------
    def put(self, url, content):
        if isinstance(content, str):
            content = content.encode()
        self._pages[url] = content

    def register_package(self, pkg_class, versions=None):
        """Serve tarballs (and a listing page) for a package class.

        ``versions`` defaults to every version the class declares; extra
        versions may be listed to exercise URL extrapolation for versions
        the package file does not know about.
        """
        if pkg_class.url is None:
            return
        if versions is None:
            versions = list(pkg_class.versions)
        urls = []
        for v in versions:
            from repro.version.url import substitute_version

            url = substitute_version(pkg_class.url, str(v))
            self.put(url, mock_tarball(pkg_class.name, v))
            urls.append(url)
        listing_url = posixpath.dirname(pkg_class.url) + "/"
        links = "\n".join('<a href="%s">%s</a>' % (u, posixpath.basename(u)) for u in urls)
        self.put(listing_url, "<html><body>\n%s\n</body></html>" % links)

    def corrupt(self, url):
        """Make this URL serve tampered bytes (checksum-failure tests)."""
        self._corrupted.add(url)

    def flake(self, url, times=1):
        """Make the next ``times`` GETs of ``url`` fail transiently.

        Failure injection for the fetcher's retry path: each failed
        attempt decrements the budget, so a fetcher configured with
        enough retries eventually succeeds.
        """
        self._flaky[url] = int(times)

    # -- access --------------------------------------------------------------
    def get(self, url):
        if url not in self._pages:
            raise NotOnWebError(url)
        remaining = self._flaky.get(url, 0)
        if remaining > 0:
            self._flaky[url] = remaining - 1
            raise TransientWebError(url, remaining - 1)
        content = self._pages[url]
        if url in self._corrupted:
            content = b"TAMPERED" + content
        return content

    def exists(self, url):
        return url in self._pages

    def urls(self):
        return sorted(self._pages)
