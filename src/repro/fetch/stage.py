"""Build staging: where a package's source is expanded and patched (§3.5.3).

By default stages live on a fast local temporary filesystem — the paper
measured home-directory (NFS) builds up to 62.7% slower and made temp
staging the default.  The stage root is a Session policy; the Figure 10
benchmark points it at the simulated-NFS profile instead.

The "tarball" from the mock web is a JSON source description; expansion
writes a source tree::

    <stage>/<name>-<version>/
        configure              # marker consumed by the fake build system
        src/unit_000.c ...     # one file per compile unit
        src/config.h           # written by `configure` at build time

Patches (``patch`` directives whose ``when`` matched the spec) append a
``PATCHED <name>`` line to every unit and drop a marker under
``.patches/`` so tests and provenance can see exactly what was applied
(the paper's gperftools / Python-on-BG/Q use cases).
"""

import json
import os
import shutil

from repro.errors import ReproError
from repro.util.filesystem import mkdirp


class StageError(ReproError):
    """Problems preparing the build stage."""


class Stage:
    """One package build's staging directory."""

    def __init__(self, root, pkg, tag=None):
        self.pkg = pkg
        self.root = os.path.abspath(root)
        # ``tag`` (the executor passes the spec's DAG hash) keeps stages
        # of same-named-same-versioned but differently-concretized specs
        # apart when builds run concurrently.
        disambiguator = "-%s" % tag if tag else ""
        self.path = os.path.join(
            self.root,
            "%s-%s%s-stage" % (pkg.name, pkg.spec.version, disambiguator),
        )
        self.source_path = os.path.join(
            self.path, "%s-%s" % (pkg.name, pkg.spec.version)
        )
        self.applied_patches = []

    def create(self):
        mkdirp(self.path)
        return self

    def expand_tarball(self, content):
        """Expand mock-tarball bytes into the source tree."""
        try:
            meta = json.loads(content.decode())
        except ValueError as e:
            raise StageError(
                "Tarball for %s is not expandable: %s" % (self.pkg.name, e)
            ) from e
        if meta.get("kind") != "mock-source-tarball":
            raise StageError("Not a mock source tarball for %s" % self.pkg.name)
        src = os.path.join(self.source_path, "src")
        mkdirp(src)
        units = int(getattr(self.pkg, "build_units", 20))
        for i in range(units):
            with open(os.path.join(src, "unit_%03d.c" % i), "w") as f:
                f.write(
                    "PACKAGE %s\nVERSION %s\nUNIT %d\nINCLUDE config.h\n"
                    % (meta["name"], meta["version"], i)
                )
        with open(os.path.join(self.source_path, "configure"), "w") as f:
            json.dump({"name": meta["name"], "version": meta["version"]}, f)
        os.chmod(os.path.join(self.source_path, "configure"), 0o755)
        return self.source_path

    def apply_patch(self, patch):
        """Apply one patch: mark every unit and record the application."""
        src = os.path.join(self.source_path, "src")
        if not os.path.isdir(src):
            raise StageError("Cannot patch before expanding: %s" % self.pkg.name)
        for entry in sorted(os.listdir(src)):
            if entry.endswith(".c"):
                with open(os.path.join(src, entry), "a") as f:
                    f.write("PATCHED %s\n" % patch.name)
        marker_dir = os.path.join(self.source_path, ".patches")
        mkdirp(marker_dir)
        with open(os.path.join(marker_dir, patch.name), "w") as f:
            f.write("applied at level %d\n" % patch.level)
        self.applied_patches.append(patch.name)

    def destroy(self):
        shutil.rmtree(self.path, ignore_errors=True)

    def __repr__(self):
        return "Stage(%r)" % self.path
