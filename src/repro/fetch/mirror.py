"""Source mirrors: local tarball caches for air-gapped machines.

HPC compute centers routinely build on machines without outbound
network; the original tool shipped ``spack mirror`` for exactly this.
A mirror is a directory of tarballs laid out as::

    <mirror-root>/<package>/<package>-<version>.tar.gz

The fetcher consults mirrors *before* the (mock) web, so a populated
mirror makes a session fully self-contained; checksum verification
applies to mirrored content identically (a tampered mirror is caught).
"""

import os

from repro.errors import ReproError
from repro.util.filesystem import mkdirp


class MirrorError(ReproError):
    """Mirror layout or population problems."""


class Mirror:
    """One on-disk tarball cache."""

    def __init__(self, root):
        self.root = os.path.abspath(root)

    def archive_path(self, pkg_name, version):
        return os.path.join(
            self.root, pkg_name, "%s-%s.tar.gz" % (pkg_name, version)
        )

    def has(self, pkg_name, version):
        return os.path.isfile(self.archive_path(pkg_name, version))

    def fetch(self, pkg_name, version):
        path = self.archive_path(pkg_name, version)
        if not os.path.isfile(path):
            return None
        with open(path, "rb") as f:
            return f.read()

    def put(self, pkg_name, version, content):
        path = self.archive_path(pkg_name, version)
        mkdirp(os.path.dirname(path))
        with open(path, "wb") as f:
            f.write(content)
        return path

    def contents(self):
        """{package: [versions]} of everything mirrored."""
        found = {}
        if not os.path.isdir(self.root):
            return found
        for pkg_name in sorted(os.listdir(self.root)):
            pkg_dir = os.path.join(self.root, pkg_name)
            if not os.path.isdir(pkg_dir):
                continue
            versions = []
            prefix = pkg_name + "-"
            for entry in sorted(os.listdir(pkg_dir)):
                if entry.startswith(prefix) and entry.endswith(".tar.gz"):
                    versions.append(entry[len(prefix):-len(".tar.gz")])
            found[pkg_name] = versions
        return found

    def __repr__(self):
        return "Mirror(%r)" % self.root


def create_mirror(session, mirror, specs):
    """Populate a mirror with everything needed to build ``specs``.

    Concretizes each request and downloads the tarball of every
    non-external node (verified against declared checksums).  Returns
    the list of (package, version) pairs written.
    """
    written = []
    seen = set()
    for spec in specs:
        concrete = spec if getattr(spec, "concrete", False) else session.concretize(spec)
        for node in concrete.traverse():
            if node.external:
                continue
            key = (node.name, str(node.version))
            if key in seen:
                continue
            seen.add(key)
            pkg = session.package_for(node)
            content = session.fetcher.fetch(pkg, node.version)
            mirror.put(node.name, node.version, content)
            written.append(key)
    return written
