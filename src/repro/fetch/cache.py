"""The on-disk fetch cache: verified downloads, shared safely.

DAG-parallel installs fetch a shared dependency's tarball from several
worker threads (or several sessions pointing at one root) at once.  The
cache makes that safe and cheap:

* **atomic publish** — content is written to a unique temp file and
  ``os.replace``d into place, so a reader never observes a partially
  written archive, whatever else is running;
* **per-URL locking** — one lock per cache key (a thread lock in
  process, an ``fcntl`` lock across processes via
  :class:`repro.util.lock.Lock`), so concurrent fetches of the same URL
  collapse into a single download: the first holder fetches and
  publishes, the rest wake up to a cache hit.

Only *verified* bytes are cached (the fetcher checks declared MD5s
before calling :meth:`FetchCache.put`), so a poisoned upstream can
never become a sticky local poisoning.
"""

import hashlib
import os
import threading

from repro.util.filesystem import mkdirp
from repro.util.lock import Lock


class FetchCache:
    """Content-addressed archive cache under a directory."""

    def __init__(self, root):
        self.root = os.path.abspath(root)
        self._url_locks = {}
        self._registry_lock = threading.Lock()

    def _key(self, url, digest=None):
        """Cache key for ``url`` expected to hash to ``digest``.

        The declared checksum is part of the key: when a package's
        ``md5`` for a version changes (a release re-pointed at the same
        URL), the old entry simply stops matching instead of serving
        stale — previously verified, now wrong — bytes forever.
        Unverified fetches (no declared digest) key on the URL alone.
        """
        token = url if digest is None else "%s#md5=%s" % (url, digest)
        return hashlib.sha256(token.encode()).hexdigest()[:32]

    def path_for(self, url, digest=None):
        return os.path.join(self.root, self._key(url, digest))

    def get(self, url, digest=None):
        """Cached bytes for ``url`` (at ``digest``, if declared), or None."""
        path = self.path_for(url, digest)
        try:
            with open(path, "rb") as f:
                return f.read()
        except OSError:
            return None

    def put(self, url, content, digest=None):
        """Atomically publish ``content`` as the cached copy of ``url``.

        Write-to-temp plus ``os.replace`` keeps concurrent readers (and
        racing writers of identical content) safe without coordination.
        """
        mkdirp(self.root)
        path = self.path_for(url, digest)
        tmp = "%s.%d.%d.tmp" % (path, os.getpid(), threading.get_ident())
        with open(tmp, "wb") as f:
            f.write(content)
        os.replace(tmp, path)
        return path

    def url_lock(self, url, digest=None):
        """The per-URL lock serializing fetches of one archive.

        One :class:`~repro.util.lock.Lock` object per key per cache, so
        threads in this process serialize on its internal thread lock
        and separate processes on the ``flock`` of the lock file.
        """
        key = self._key(url, digest)
        with self._registry_lock:
            lock = self._url_locks.get(key)
            if lock is None:
                lock = self._url_locks[key] = Lock(
                    os.path.join(self.root, ".locks", key + ".lock")
                )
            return lock

    def __repr__(self):
        return "FetchCache(%r)" % self.root
