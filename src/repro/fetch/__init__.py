"""Fetching: a deterministic mock internet, checksums, staging (§3.2.3)."""

from repro.fetch.mockweb import MockWeb, NotOnWebError, mock_tarball, mock_checksum
from repro.fetch.fetcher import ChecksumError, Fetcher, FetchError
from repro.fetch.stage import Stage, StageError
from repro.fetch.mirror import Mirror, MirrorError, create_mirror

__all__ = [
    "Mirror",
    "MirrorError",
    "create_mirror",
    "MockWeb",
    "NotOnWebError",
    "mock_tarball",
    "mock_checksum",
    "Fetcher",
    "FetchError",
    "ChecksumError",
    "Stage",
    "StageError",
]
