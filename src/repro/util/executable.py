"""Subprocess wrapper giving package recipes shell-like command objects.

The paper's package DSL lets ``install()`` call ``configure(...)``,
``make(...)``, etc. as Python functions (§3.1).  :class:`Executable` is the
object behind those names: calling it runs the program, captures output
into the build log, and raises on failure.
"""

import os
import subprocess

from repro.errors import ReproError


class ProcessError(ReproError):
    """A child process exited with a non-zero status."""

    def __init__(self, command, returncode, output=""):
        super().__init__(
            "Command exited with status %d: %s" % (returncode, " ".join(command)),
            long_message=output[-4000:] if output else None,
        )
        self.command = command
        self.returncode = returncode
        self.output = output


class Executable:
    """A named external program, callable with string arguments.

    Attributes
    ----------
    exe:
        Base argv list (program path plus baked-in leading arguments).
    returncode:
        Exit status of the most recent invocation.
    """

    def __init__(self, path, *baked_args):
        self.exe = [str(path)] + [str(a) for a in baked_args]
        self.returncode = None

    @property
    def command(self):
        return self.exe[0]

    @property
    def name(self):
        return os.path.basename(self.command)

    def add_default_arg(self, arg):
        self.exe.append(str(arg))

    def __call__(self, *args, **kwargs):
        """Run the program.

        Keyword arguments:
          - ``output``/``error``: ``str`` to capture and return text, or an
            open file object to stream into (the installer passes the build
            log here).
          - ``env``: full replacement environment for the child.
          - ``fail_on_error`` (default True): raise :class:`ProcessError`
            on non-zero exit instead of returning.
          - ``ignore_errors``: iterable of acceptable non-zero statuses.
        """
        fail_on_error = kwargs.pop("fail_on_error", True)
        ignore_errors = tuple(kwargs.pop("ignore_errors", ()))
        output = kwargs.pop("output", None)
        error = kwargs.pop("error", None)
        env = kwargs.pop("env", None)
        if kwargs:
            raise TypeError("Unknown kwargs for Executable: %s" % sorted(kwargs))

        cmd = self.exe + [str(a) for a in args]

        capture = output is str or error is str
        stdout = subprocess.PIPE if capture else (output or None)
        stderr = subprocess.STDOUT if capture else (error or None)

        proc = subprocess.run(
            cmd,
            stdout=stdout,
            stderr=stderr,
            env=env,
            text=True,
        )
        self.returncode = proc.returncode
        out_text = proc.stdout or ""

        if proc.returncode not in (0,) + ignore_errors and fail_on_error:
            raise ProcessError(cmd, proc.returncode, out_text)
        if capture:
            return out_text
        return None

    def __repr__(self):
        return "<Executable: %s>" % " ".join(self.exe)


def which(name, path=None, required=False):
    """Find ``name`` on ``path`` (default ``$PATH``); return an Executable.

    Returns ``None`` when not found unless ``required`` is set.
    """
    search = path if path is not None else os.environ.get("PATH", "").split(os.pathsep)
    if isinstance(search, str):
        search = search.split(os.pathsep)
    for directory in search:
        candidate = os.path.join(directory, name)
        if os.path.isfile(candidate) and os.access(candidate, os.X_OK):
            return Executable(candidate)
    if required:
        raise ReproError("Executable %r not found in PATH" % name)
    return None
