"""Declarative environment-variable modifications.

The build environment (paper §3.5.1) and generated module files (§3.5.4)
both need to describe *changes* to a process environment — set this, prepend
that path — independent of when/where they are applied.
:class:`EnvironmentModifications` records an ordered list of operations that
can be applied to any dict (``os.environ`` or a fresh sandbox), or rendered
to dotkit / TCL module syntax by :mod:`repro.modules`.
"""

import os


class EnvOperation:
    """A single recorded modification; subclasses implement ``apply``."""

    def __init__(self, name, value=None, separator=":"):
        self.name = name
        self.value = value
        self.separator = separator

    def apply(self, env):
        raise NotImplementedError

    def __repr__(self):
        return "%s(%r, %r)" % (type(self).__name__, self.name, self.value)


class SetEnv(EnvOperation):
    def apply(self, env):
        env[self.name] = str(self.value)


class UnsetEnv(EnvOperation):
    def apply(self, env):
        env.pop(self.name, None)


class AppendPath(EnvOperation):
    def apply(self, env):
        current = env.get(self.name, "")
        parts = [p for p in current.split(self.separator) if p]
        parts.append(str(self.value))
        env[self.name] = self.separator.join(parts)


class PrependPath(EnvOperation):
    def apply(self, env):
        current = env.get(self.name, "")
        parts = [p for p in current.split(self.separator) if p]
        parts.insert(0, str(self.value))
        env[self.name] = self.separator.join(parts)


class RemovePath(EnvOperation):
    def apply(self, env):
        current = env.get(self.name, "")
        parts = [p for p in current.split(self.separator) if p and p != str(self.value)]
        if parts:
            env[self.name] = self.separator.join(parts)
        else:
            env.pop(self.name, None)


class EnvironmentModifications:
    """An ordered, replayable list of environment modifications."""

    def __init__(self):
        self.operations = []

    def set(self, name, value):
        self.operations.append(SetEnv(name, value))

    def unset(self, name):
        self.operations.append(UnsetEnv(name))

    def append_path(self, name, value, separator=":"):
        self.operations.append(AppendPath(name, value, separator))

    def prepend_path(self, name, value, separator=":"):
        self.operations.append(PrependPath(name, value, separator))

    def remove_path(self, name, value, separator=":"):
        self.operations.append(RemovePath(name, value, separator))

    def extend(self, other):
        self.operations.extend(other.operations)

    def apply(self, env=None):
        """Apply all operations to ``env`` (default: ``os.environ``)."""
        if env is None:
            env = os.environ
        for op in self.operations:
            op.apply(env)
        return env

    def applied_to(self, base=None):
        """Return a *new* dict: ``base`` (default empty) plus these mods."""
        env = dict(base or {})
        self.apply(env)
        return env

    def __iter__(self):
        return iter(self.operations)

    def __len__(self):
        return len(self.operations)
