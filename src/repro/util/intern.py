"""Bounded, thread-safe intern pools for parsed value objects.

Concretization re-parses the same handful of constraint atoms thousands
of times (``bench_profile_hotspots.py``): every ``depends_on`` re-reads
its ``@2:`` text, every comparison re-derives the same component keys.
Interning collapses those into one shared immutable object per distinct
source text, so identity checks short-circuit equality and the parse
cost is paid once per session instead of once per use.

The pool is *bounded*: once ``maxsize`` distinct keys are live it stops
admitting new entries (callers keep their un-interned object, which is
always correct — interning is an optimization, never a semantic).  This
caps memory on adversarial workloads (e.g. fuzzing campaigns generating
millions of distinct version strings) without an LRU's bookkeeping cost
on the hot path.
"""

import threading


class InternPool:
    """Map hashable keys to canonical values, bounded, thread-safe.

    ``get(key)`` returns the canonical value or None; ``put(key, value)``
    admits a value (first writer wins) and returns the canonical one.
    ``intern(key, factory)`` combines both.  Statistics (``hits``,
    ``misses``) are kept for telemetry and tests.
    """

    __slots__ = ("maxsize", "_table", "_lock", "hits", "misses")

    def __init__(self, maxsize=65536):
        self.maxsize = int(maxsize)
        self._table = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key):
        # dict reads are atomic under the GIL; grab the lock only to write
        value = self._table.get(key)
        if value is not None:
            self.hits += 1
        return value

    def put(self, key, value):
        with self._lock:
            existing = self._table.get(key)
            if existing is not None:
                return existing
            if len(self._table) < self.maxsize:
                self._table[key] = value
            self.misses += 1
            return value

    def intern(self, key, factory):
        """Canonical value for ``key``, creating it with ``factory()``."""
        value = self.get(key)
        if value is not None:
            return value
        return self.put(key, factory())

    def __len__(self):
        return len(self._table)

    def clear(self):
        with self._lock:
            self._table.clear()
            self.hits = 0
            self.misses = 0

    def stats(self):
        return {"size": len(self._table), "hits": self.hits,
                "misses": self.misses, "maxsize": self.maxsize}
