"""Bounded, thread-safe intern pools for parsed value objects.

Concretization re-parses the same handful of constraint atoms thousands
of times (``bench_profile_hotspots.py``): every ``depends_on`` re-reads
its ``@2:`` text, every comparison re-derives the same component keys.
Interning collapses those into one shared immutable object per distinct
source text, so identity checks short-circuit equality and the parse
cost is paid once per session instead of once per use.

The pool is *bounded*: once ``maxsize`` distinct keys are live it stops
admitting new entries (callers keep their un-interned object, which is
always correct — interning is an optimization, never a semantic).  This
caps memory on adversarial workloads (e.g. fuzzing campaigns generating
millions of distinct version strings) without an LRU's bookkeeping cost
on the hot path.

Statistics are exact under concurrency without slowing the read path:
each thread increments a private :class:`_StatsCell` (no lock, no
sharing), and ``hits``/``misses``/``stats()`` fold every live cell on
demand.  A bare shared counter here would lose updates — the service
daemon's worker pool hammers ``get`` from many threads at once — and a
lock on ``get`` would serialize the hottest read in the system.
"""

import threading


class _StatsCell:
    """One thread's private hit/miss tally (folded on read)."""

    __slots__ = ("hits", "misses")

    def __init__(self):
        self.hits = 0
        self.misses = 0


class InternPool:
    """Map hashable keys to canonical values, bounded, thread-safe.

    ``get(key)`` returns the canonical value or None; ``put(key, value)``
    admits a value (first writer wins) and returns the canonical one.
    ``intern(key, factory)`` combines both.  Statistics (``hits``,
    ``misses``) are kept for telemetry and tests.
    """

    __slots__ = ("maxsize", "_table", "_lock", "_local", "_cells")

    def __init__(self, maxsize=65536):
        self.maxsize = int(maxsize)
        self._table = {}
        self._lock = threading.Lock()
        self._local = threading.local()
        #: every thread's cell, appended under the lock; folding walks
        #: this list so counts survive their owning thread's death
        self._cells = []

    def _cell(self):
        cell = getattr(self._local, "cell", None)
        if cell is None:
            cell = _StatsCell()
            with self._lock:
                self._cells.append(cell)
            self._local.cell = cell
        return cell

    @property
    def hits(self):
        return sum(cell.hits for cell in self._cells)

    @property
    def misses(self):
        return sum(cell.misses for cell in self._cells)

    def get(self, key):
        # dict reads are atomic under the GIL; stats go to a per-thread
        # cell so the hot path never takes (or races on) the lock
        value = self._table.get(key)
        if value is not None:
            self._cell().hits += 1
        return value

    def put(self, key, value):
        cell = self._cell()
        with self._lock:
            existing = self._table.get(key)
            if existing is not None:
                return existing
            if len(self._table) < self.maxsize:
                self._table[key] = value
            cell.misses += 1
            return value

    def intern(self, key, factory):
        """Canonical value for ``key``, creating it with ``factory()``."""
        value = self.get(key)
        if value is not None:
            return value
        return self.put(key, factory())

    def __len__(self):
        return len(self._table)

    def clear(self):
        with self._lock:
            self._table.clear()
            for cell in self._cells:
                cell.hits = 0
                cell.misses = 0

    def stats(self):
        return {"size": len(self._table), "hits": self.hits,
                "misses": self.misses, "maxsize": self.maxsize}
