"""Shared low-level utilities: language helpers, naming, filesystem, env."""
