"""Filesystem helpers: directory creation, tree traversal, symlink trees.

The view and extension subsystems (paper §4.2, §4.3.1) are built on
symlinked directory trees; :func:`traverse_tree` and
:func:`LinkTree` implement the mechanics of merging one prefix into
another and cleanly removing it again.
"""

import contextlib
import errno
import os
import shutil

from repro.errors import ReproError


class FilesystemError(ReproError):
    """Raised for filesystem-level failures (conflicts, missing paths)."""


def mkdirp(*paths):
    """Create each directory (and parents) if it does not already exist."""
    for path in paths:
        os.makedirs(path, exist_ok=True)


def touch(path):
    """Create an empty file (or update its mtime)."""
    with open(path, "a"):
        os.utime(path, None)


def join_path(prefix, *parts):
    """`os.path.join` alias kept for readability in package recipes."""
    return os.path.join(prefix, *parts)


def ancestor(path, n=1):
    """Return the n-th ancestor directory of ``path``."""
    parent = os.path.abspath(path)
    for _ in range(n):
        parent = os.path.dirname(parent)
    return parent


@contextlib.contextmanager
def working_dir(dirname, create=False):
    """Context manager: chdir into ``dirname`` for the duration of the block.

    Package ``install()`` methods use this (e.g. building in a separate
    ``spack-build`` directory, Figure 4 of the paper).

    Inside an active build (the installer's executor pushed a
    :class:`~repro.build.context.BuildContext`), the change applies to
    that build's *virtual* working directory rather than the process
    cwd: the process-global ``chdir`` would race between DAG-parallel
    build workers, while each context's ``cwd`` is thread-private.
    Outside a build the classic process-wide behavior is preserved.
    """
    from repro.build.context import active_context_or_none

    ctx = active_context_or_none()
    if ctx is not None:
        resolved = os.path.join(ctx.cwd, dirname) if ctx.cwd else dirname
        if create:
            mkdirp(resolved)
        orig = ctx.cwd
        ctx.cwd = os.path.abspath(resolved)
        try:
            yield ctx.cwd
        finally:
            ctx.cwd = orig
        return

    if create:
        mkdirp(dirname)
    orig = os.getcwd()
    os.chdir(dirname)
    try:
        yield dirname
    finally:
        os.chdir(orig)


def traverse_tree(src_root, rel_path=""):
    """Yield ``(relative_path, is_dir)`` for every entry under ``src_root``.

    Directories are yielded before their contents (pre-order), which is the
    order needed to mirror a tree with symlinks.
    """
    abs_dir = os.path.join(src_root, rel_path) if rel_path else src_root
    for entry in sorted(os.listdir(abs_dir)):
        rel_entry = os.path.join(rel_path, entry) if rel_path else entry
        abs_entry = os.path.join(src_root, rel_entry)
        if os.path.isdir(abs_entry) and not os.path.islink(abs_entry):
            yield rel_entry, True
            yield from traverse_tree(src_root, rel_entry)
        else:
            yield rel_entry, False


class LinkTree:
    """Merge a source prefix into a destination via symlinks.

    This is the mechanism behind extension activation (§4.2): each regular
    file in the source becomes a symlink in the destination; directories
    are created as real directories so several sources can share them.

    ``find_conflict`` reports the first destination file that already
    exists and is *not* a link back into this source — activation must
    fail in that case unless a package-specific merge hook handles it.
    """

    def __init__(self, source_root):
        if not os.path.isdir(source_root):
            raise FilesystemError("LinkTree source is not a directory: %s" % source_root)
        self.source_root = os.path.abspath(source_root)

    def find_conflict(self, dest_root, ignore=None):
        """Return the relative path of the first conflicting file, or None."""
        ignore = ignore or (lambda rel: False)
        for rel, is_dir in traverse_tree(self.source_root):
            if ignore(rel):
                continue
            dest = os.path.join(dest_root, rel)
            if is_dir:
                if os.path.exists(dest) and not os.path.isdir(dest):
                    return rel
            elif os.path.lexists(dest):
                src = os.path.join(self.source_root, rel)
                if not (os.path.islink(dest) and os.readlink(dest) == src):
                    return rel
        return None

    def merge(self, dest_root, ignore=None):
        """Symlink every file from the source into ``dest_root``."""
        ignore = ignore or (lambda rel: False)
        conflict = self.find_conflict(dest_root, ignore=ignore)
        if conflict is not None:
            raise FilesystemError(
                "Cannot merge %s into %s: %s already exists"
                % (self.source_root, dest_root, conflict)
            )
        for rel, is_dir in traverse_tree(self.source_root):
            if ignore(rel):
                continue
            dest = os.path.join(dest_root, rel)
            if is_dir:
                mkdirp(dest)
            elif not os.path.lexists(dest):
                src = os.path.join(self.source_root, rel)
                os.symlink(src, dest)

    def unmerge(self, dest_root, ignore=None):
        """Remove the symlinks created by :meth:`merge`.

        Directories that become empty are pruned (deepest first), restoring
        the destination to its pristine state.
        """
        ignore = ignore or (lambda rel: False)
        dirs = []
        for rel, is_dir in traverse_tree(self.source_root):
            if ignore(rel):
                continue
            dest = os.path.join(dest_root, rel)
            if is_dir:
                dirs.append(dest)
            elif os.path.islink(dest):
                src = os.path.join(self.source_root, rel)
                if os.readlink(dest) == src:
                    os.unlink(dest)
        for d in sorted(dirs, key=len, reverse=True):
            with contextlib.suppress(OSError):
                os.rmdir(d)  # only removes empty dirs


def force_remove(path):
    """Remove a file, symlink, or directory tree; ignore missing paths."""
    try:
        if os.path.islink(path) or os.path.isfile(path):
            os.unlink(path)
        elif os.path.isdir(path):
            shutil.rmtree(path)
    except OSError as err:
        if err.errno != errno.ENOENT:
            raise


def install_tree(src, dest):
    """Copy a directory tree (used by fake ``make install``)."""
    mkdirp(dest)
    for rel, is_dir in traverse_tree(src):
        target = os.path.join(dest, rel)
        if is_dir:
            mkdirp(target)
        else:
            shutil.copy2(os.path.join(src, rel), target)
