"""Advisory file locking for shared stores.

Multiple sessions (or users — the paper's setting is a multi-user HPC
center) may point at one install tree.  The database serializes its
read-modify-write cycles through an ``fcntl`` advisory lock so
concurrent installs cannot interleave index updates and lose records.
"""

import contextlib
import errno
import fcntl
import os
import time

from repro.errors import ReproError


class LockTimeoutError(ReproError):
    def __init__(self, path, timeout):
        super().__init__(
            "Could not acquire lock %s within %.1fs" % (path, timeout)
        )


class Lock:
    """An exclusive advisory lock on a file path (re-entrant per object)."""

    def __init__(self, path):
        self.path = path
        self._fd = None
        self._depth = 0

    def acquire(self, timeout=60.0, poll=0.05):
        if self._depth > 0:
            self._depth += 1
            return self
        os.makedirs(os.path.dirname(self.path), exist_ok=True)
        self._fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        deadline = time.monotonic() + timeout
        while True:
            try:
                fcntl.flock(self._fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                self._depth = 1
                return self
            except OSError as err:
                if err.errno not in (errno.EAGAIN, errno.EACCES):
                    raise
                if time.monotonic() >= deadline:
                    os.close(self._fd)
                    self._fd = None
                    raise LockTimeoutError(self.path, timeout) from None
                time.sleep(poll)

    def release(self):
        if self._depth == 0:
            return
        self._depth -= 1
        if self._depth == 0 and self._fd is not None:
            fcntl.flock(self._fd, fcntl.LOCK_UN)
            os.close(self._fd)
            self._fd = None

    @property
    def held(self):
        return self._depth > 0

    @contextlib.contextmanager
    def __call__(self, timeout=60.0):
        self.acquire(timeout=timeout)
        try:
            yield self
        finally:
            self.release()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc):
        self.release()
        return False
