"""Advisory file locking for shared stores.

Multiple sessions (or users — the paper's setting is a multi-user HPC
center) may point at one install tree.  The database serializes its
read-modify-write cycles through an ``fcntl`` advisory lock so
concurrent installs cannot interleave index updates and lose records.

Locks are safe both *across* processes (``flock`` on the lock file) and
*within* one (an internal ``threading.RLock``).  The second part
matters for DAG-parallel installs: scheduler workers in one process
share a single ``Database`` — and therefore a single ``Lock`` object —
and ``flock`` alone cannot arbitrate threads sharing one file
descriptor.  The re-entrancy depth is tracked per owning thread, so
``with lock: with lock: ...`` still works from any one thread while
other threads block on acquire.
"""

import contextlib
import errno
import fcntl
import os
import threading
import time

from repro.errors import ReproError


class LockTimeoutError(ReproError):
    def __init__(self, path, timeout):
        super().__init__(
            "Could not acquire lock %s within %.1fs" % (path, timeout)
        )


class Lock:
    """An exclusive advisory lock on a file path.

    Re-entrant for the thread that holds it; exclusive against other
    threads in this process and other processes on the same path.
    """

    def __init__(self, path, faults=None, owner=None):
        self.path = path
        self._fd = None
        self._depth = 0
        #: serializes threads sharing this Lock object; re-entrant so the
        #: holding thread's nested acquires match the depth counter
        self._thread_lock = threading.RLock()
        #: optional session FaultInjector; ``owner`` is the label fault
        #: plans target (a package name for prefix locks)
        self._faults = faults
        self._owner = owner

    def acquire(self, timeout=60.0, poll=0.05):
        if self._faults is not None:
            # fault site: a lock that cannot be acquired in time, raised
            # before any state changes so no cleanup is owed
            self._faults.hit("lock.timeout", target=self._owner)
        if not self._thread_lock.acquire(timeout=timeout):
            raise LockTimeoutError(self.path, timeout)
        if self._depth > 0:
            self._depth += 1
            return self
        os.makedirs(os.path.dirname(self.path), exist_ok=True)
        self._fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        deadline = time.monotonic() + timeout
        while True:
            try:
                fcntl.flock(self._fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                self._depth = 1
                return self
            except OSError as err:
                if err.errno not in (errno.EAGAIN, errno.EACCES):
                    os.close(self._fd)
                    self._fd = None
                    self._thread_lock.release()
                    raise
                if time.monotonic() >= deadline:
                    os.close(self._fd)
                    self._fd = None
                    self._thread_lock.release()
                    raise LockTimeoutError(self.path, timeout) from None
                time.sleep(poll)

    def release(self):
        if self._depth == 0:
            return
        self._depth -= 1
        if self._depth == 0 and self._fd is not None:
            fcntl.flock(self._fd, fcntl.LOCK_UN)
            os.close(self._fd)
            self._fd = None
        self._thread_lock.release()

    @property
    def held(self):
        return self._depth > 0

    @contextlib.contextmanager
    def __call__(self, timeout=60.0):
        self.acquire(timeout=timeout)
        try:
            yield self
        finally:
            self.release()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc):
        self.release()
        return False
