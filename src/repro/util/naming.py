"""Package- and module-name validation and conversion.

Package names follow the grammar's ``id`` rule (Figure 3 of the paper):
``[A-Za-z0-9_][A-Za-z0-9_.-]*``.  Package *files* use the name as-is (with
``-`` mapped to ``_`` for importability) and package *classes* use a
CamelCase form, e.g. ``py-numpy`` ↔ ``PyNumpy``.
"""

import re

from repro.errors import ReproError

#: The ``id`` rule from the spec grammar (Figure 3).
IDENTIFIER_RE = re.compile(r"^[A-Za-z0-9_][A-Za-z0-9_.\-]*$")


class InvalidPackageNameError(ReproError):
    """Raised for names that do not match the grammar's ``id`` rule."""

    def __init__(self, name):
        super().__init__("Invalid package name: %r" % (name,))
        self.name = name


def validate_name(name):
    """Return ``name`` if it is a legal package identifier, else raise."""
    if not isinstance(name, str) or not IDENTIFIER_RE.match(name):
        raise InvalidPackageNameError(name)
    return name


def valid_name(name):
    """True if ``name`` is a legal package identifier."""
    return isinstance(name, str) and bool(IDENTIFIER_RE.match(name))


def mod_to_class(mod_name):
    """Convert a package name to its class name (``py-numpy`` → ``PyNumpy``).

    Rules (mirroring the original tool): split on ``-``, ``_`` and ``.``;
    capitalize each part; a leading digit gets an underscore prefix since
    class names cannot start with digits (``3proxy`` → ``_3proxy``).
    """
    validate_name(mod_name)
    parts = re.split(r"[-_.]", mod_name)
    class_name = "".join(p[:1].upper() + p[1:] for p in parts if p)
    if class_name and class_name[0].isdigit():
        class_name = "_" + class_name
    return class_name


def class_to_mod(class_name):
    """Best-effort inverse of :func:`mod_to_class` for single-word names.

    Only used for error messages; the repository records the authoritative
    name → class mapping when it loads package files.
    """
    name = re.sub(r"([a-z0-9])([A-Z])", r"\1-\2", class_name).lower()
    return name.lstrip("_")


def pkg_name_to_module_name(pkg_name):
    """File-system module name for a package (``py-numpy`` → ``py_numpy``)."""
    validate_name(pkg_name)
    return pkg_name.replace("-", "_").replace(".", "_")
