"""Small language-level helpers used across the library.

These mirror the utilities the original system leaned on: value-object
ordering via a single key function, cheap memoization for hot lookups, and
a few iterator helpers.  Keeping them here avoids re-deriving comparison
boilerplate in :mod:`repro.version` and :mod:`repro.spec`, which are the
hottest code paths in the concretizer (see DESIGN.md §5).
"""

import functools


def key_ordering(cls):
    """Class decorator: derive all rich comparisons from ``_cmp_key``.

    The decorated class must define ``_cmp_key(self)`` returning a tuple.
    Equality additionally requires the other object to expose a
    ``_cmp_key`` (so comparing against unrelated types returns
    ``NotImplemented`` rather than raising).  A matching ``__hash__`` is
    generated from the same key, keeping hash/eq consistent.
    """
    if not hasattr(cls, "_cmp_key"):
        raise TypeError("%s must define _cmp_key() to use @key_ordering" % cls.__name__)

    def _compare(op):
        def comparator(self, other):
            if not hasattr(other, "_cmp_key"):
                return NotImplemented
            return op(self._cmp_key(), other._cmp_key())

        return comparator

    def _eq(self, other):
        # Interned value objects (see util/intern.py) hit this identity
        # check and skip the key comparison entirely.
        if self is other:
            return True
        if not hasattr(other, "_cmp_key"):
            return NotImplemented
        return self._cmp_key() == other._cmp_key()

    def _ne(self, other):
        if self is other:
            return False
        if not hasattr(other, "_cmp_key"):
            return NotImplemented
        return self._cmp_key() != other._cmp_key()

    cls.__eq__ = _eq
    cls.__ne__ = _ne
    cls.__lt__ = _compare(lambda a, b: a < b)
    cls.__le__ = _compare(lambda a, b: a <= b)
    cls.__gt__ = _compare(lambda a, b: a > b)
    cls.__ge__ = _compare(lambda a, b: a >= b)
    cls.__hash__ = lambda self: hash(self._cmp_key())
    return cls


def memoized(func):
    """Memoize a function of hashable arguments.

    Unlike :func:`functools.lru_cache`, the cache is unbounded and exposed
    as ``func.cache`` so tests can clear it between sessions.
    """
    cache = {}

    @functools.wraps(func)
    def wrapper(*args):
        if args not in cache:
            cache[args] = func(*args)
        return cache[args]

    wrapper.cache = cache
    return wrapper


def dedupe(iterable):
    """Yield items in order, skipping duplicates (by equality)."""
    seen = set()
    for item in iterable:
        if item not in seen:
            seen.add(item)
            yield item


def union_dicts(*dicts):
    """Merge dictionaries left-to-right; later keys win."""
    result = {}
    for d in dicts:
        result.update(d)
    return result


class lazy_property:
    """Descriptor computing a value once per instance, then caching it.

    Used for expensive derived values (e.g. a spec's English explanation)
    that must not be computed during hot concretizer loops.
    """

    def __init__(self, func):
        self.func = func
        functools.update_wrapper(self, func)

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        value = self.func(obj)
        obj.__dict__[self.func.__name__] = value
        return value


def stable_partition(iterable, predicate):
    """Split items into (matching, non-matching) lists, preserving order."""
    yes, no = [], []
    for item in iterable:
        (yes if predicate(item) else no).append(item)
    return yes, no
