"""Differential oracle: greedy vs. backtracking vs. solver concretization.

The three concretizers implement the same contract by different
strategies, which makes them oracles for each other (the technique
ASP-based solvers later formalized: divergence between implementations
is evidence of a bug even when neither answer is obviously wrong).
The solver adds a second axis: it *scores* every answer, so the oracle
can also catch a solution that is consistent but suboptimal.

Outcome classification for one abstract request:

``agree-success``
    All three succeed with the *same DAG hash*.  The common case: both
    searches run the greedy pass as their zero-deviation baseline, so
    whenever greedy's answer is optimal all three are byte-identical.
``improvement``
    Greedy succeeded but the solver returned a *strictly
    better-scoring* DAG (the backtracking search, whose zeroth attempt
    is greedy's, must still reproduce greedy exactly).  Benign and
    expected on conflict-rich universes: greedy's myopic provider pick
    can drag in a version pin a cheap provider deviation avoids — the
    reason real Spack moved to an optimizing solver.  A solver hash
    mismatch *without* a strictly better score stays a divergence:
    same-score different-hash is nondeterminism, worse-score is an
    optimality bug.
``rescue``
    Greedy fails and the solver finds a solution (the backtracking
    search may rescue too — the provider-only subspace — or may not:
    the solver also explores version/variant/compiler deviations, and
    a backtracking failure on a solver-rescued request is benign).
    Campaigns count rescues but do not flag them.
``agree-error``
    All three fail with typed errors.  Benign: the error *types* may
    differ (greedy reports the first contradiction, the searches report
    exhaustion) and that difference is allowlisted; what matters is
    that none invented a solution the others prove impossible.
``optimality-divergence``
    The solver succeeded, but another variant found a *strictly
    better-scoring* DAG under the solver's own objective.  Always a
    bug: the solver's whole contract is that its first answer is the
    best-scoring consistent one.
``divergence``
    Anything else — successes with mismatched hashes, or a more general
    strategy failing where a less general one succeeded (greedy ok but
    a search failed; backtracking ok but the solver failed).  Always a
    bug; the oracle attaches a minimized reproducer.
"""

import re

from repro.compilers.registry import CompilerError
from repro.core.backtracking import BacktrackingConcretizer
from repro.core.concretizer import ConcretizationError, Concretizer
from repro.core.solver import SolverConcretizer
from repro.spec.errors import SpecError
from repro.spec.spec import Spec
from repro.version import VersionParseError

#: benign outcome kinds (everything except the two divergence kinds)
AGREE_SUCCESS = "agree-success"
AGREE_ERROR = "agree-error"
RESCUE = "rescue"
IMPROVEMENT = "improvement"
DIVERGENCE = "divergence"
OPTIMALITY_DIVERGENCE = "optimality-divergence"

#: error families the oracle treats as "typed, clean failure"
TYPED_ERRORS = (ConcretizationError, SpecError, VersionParseError,
                CompilerError)

#: syntactic components the minimizer may strip, one at a time
_COMPONENT = re.compile(
    r"""
      \s*\^[^\s^]+          # a ^dependency constraint
    | %[A-Za-z0-9_.@:-]+    # a compiler pin
    | @[^%+~=^\s]+          # a version constraint
    | [+~][A-Za-z0-9_]+     # a variant flag
    | =[A-Za-z0-9_.-]+      # an architecture pin
    """,
    re.VERBOSE,
)


class Comparison:
    """The oracle's verdict on one request."""

    def __init__(self, request, kind, greedy_hash=None, backtracking_hash=None,
                 greedy_error=None, backtracking_error=None, attempts=1,
                 minimized=None, solver_hash=None, solver_error=None,
                 solver_attempts=0, solver_score=None, best_score=None):
        self.request = request
        self.kind = kind
        self.greedy_hash = greedy_hash
        self.backtracking_hash = backtracking_hash
        self.solver_hash = solver_hash
        #: error *type name*, kept as a string so reports stay JSON-able
        self.greedy_error = greedy_error
        self.backtracking_error = backtracking_error
        self.solver_error = solver_error
        #: greedy passes the backtracking search consumed
        self.attempts = attempts
        #: assignments the solver search evaluated
        self.solver_attempts = solver_attempts
        #: objective value of the solver's DAG (None when it failed)
        self.solver_score = solver_score
        #: best objective any variant achieved (None when all failed)
        self.best_score = best_score
        #: smallest request string that still diverges (divergences only)
        self.minimized = minimized

    @property
    def divergent(self):
        return self.kind in (DIVERGENCE, OPTIMALITY_DIVERGENCE)

    def to_dict(self):
        return {
            "request": self.request,
            "kind": self.kind,
            "greedy_hash": self.greedy_hash,
            "backtracking_hash": self.backtracking_hash,
            "solver_hash": self.solver_hash,
            "greedy_error": self.greedy_error,
            "backtracking_error": self.backtracking_error,
            "solver_error": self.solver_error,
            "attempts": self.attempts,
            "solver_attempts": self.solver_attempts,
            "solver_score": self.solver_score,
            "best_score": self.best_score,
            "minimized": self.minimized,
        }

    def __repr__(self):
        return "Comparison(%r, %s)" % (self.request, self.kind)


class DifferentialOracle:
    """Runs all three concretizers on requests and classifies outcomes."""

    def __init__(self, repo, provider_index, compilers, config, policy=None,
                 max_attempts=256, solver_max_attempts=None):
        self.greedy = Concretizer(repo, provider_index, compilers, config,
                                  policy=policy)
        self.backtracking = BacktrackingConcretizer(
            repo, provider_index, compilers, config, policy=policy,
            max_attempts=max_attempts,
        )
        # the solver's space is a superset of the provider space, so its
        # default budget is a multiple of the backtracking one: whatever
        # backtracking can rescue must stay within the solver's reach
        if solver_max_attempts is None:
            solver_max_attempts = max_attempts * 8
        self.solver = SolverConcretizer(
            repo, provider_index, compilers, config, policy=policy,
            max_attempts=solver_max_attempts,
        )

    # -- running one side ---------------------------------------------------
    @staticmethod
    def _run(concretizer, request):
        """(dag_hash, concrete, error_type_name) — exactly one of
        hash/error is set; untyped exceptions propagate (they are crashes
        the caller should see raw)."""
        try:
            concrete = concretizer.concretize(Spec(request))
        except TYPED_ERRORS as e:
            return None, None, type(e).__name__
        return concrete.dag_hash(), concrete, None

    # -- the oracle ---------------------------------------------------------
    def compare(self, request, minimize=True):
        """Classify one request; see the module docstring for the kinds."""
        request = str(request)
        g_hash, g_spec, g_err = self._run(self.greedy, request)
        b_hash, b_spec, b_err = self._run(self.backtracking, request)
        attempts = self.backtracking.last_attempts
        s_hash, s_spec, s_err = self._run(self.solver, request)
        solver_attempts = self.solver.last_attempts

        # score every success on the solver's objective scale
        s_score = self.solver.score(s_spec) if s_spec is not None else None
        g_score = self.solver.score(g_spec) if g_spec is not None else None
        b_score = self.solver.score(b_spec) if b_spec is not None else None
        alt_scores = [a for a in (g_score, b_score) if a is not None]
        scores = alt_scores + ([s_score] if s_score is not None else [])
        best_score = min(scores) if scores else None

        kind = self._classify(
            g_hash, b_hash, s_hash, g_score, s_score, alt_scores
        )

        minimized = None
        if kind in (DIVERGENCE, OPTIMALITY_DIVERGENCE) and minimize:
            minimized = self.minimize(request)
        return Comparison(
            request, kind,
            greedy_hash=g_hash, backtracking_hash=b_hash, solver_hash=s_hash,
            greedy_error=g_err, backtracking_error=b_err, solver_error=s_err,
            attempts=attempts, solver_attempts=solver_attempts,
            solver_score=s_score, best_score=best_score, minimized=minimized,
        )

    @staticmethod
    def _classify(g_hash, b_hash, s_hash, g_score, s_score, alt_scores):
        # a consistent solution exists but the solver's is worse (or
        # missing): the optimization contract is broken
        if s_score is not None and any(a < s_score for a in alt_scores):
            return OPTIMALITY_DIVERGENCE
        if g_hash is not None:
            if b_hash != g_hash:
                # backtracking's zeroth attempt IS the greedy pass: any
                # mismatch on a greedy success is a real bug
                return DIVERGENCE
            if s_hash == g_hash:
                return AGREE_SUCCESS
            if (
                s_hash is not None
                and s_score is not None
                and g_score is not None
                and s_score < g_score
            ):
                # the solver beat greedy on its own objective — the
                # optimization working as designed, not a bug
                return IMPROVEMENT
            # different hash without a strictly better score: either
            # nondeterminism (same score) or a lost solution
            return DIVERGENCE
        if s_hash is not None:
            # greedy failed, solver rescued; backtracking may or may not
            # (its provider-only space is a strict subset)
            return RESCUE
        if b_hash is not None:
            # the solver's space subsumes backtracking's: failing where
            # the weaker search succeeded is a bug
            return DIVERGENCE
        return AGREE_ERROR

    # -- reproducer minimization -------------------------------------------
    def _diverges(self, request):
        try:
            return self.compare(request, minimize=False).divergent
        except Exception:  # noqa: BLE001 — a crash while shrinking is
            return False   # not the divergence we are reducing

    def minimize(self, request):
        """Greedy ddmin over syntactic components: repeatedly drop any
        single constraint (version, compiler, variant, arch, ^dep) while
        the result still diverges.  Returns the fixed point."""
        current = str(request)
        shrunk = True
        while shrunk:
            shrunk = False
            for match in list(_COMPONENT.finditer(current)):
                candidate = (
                    current[: match.start()] + current[match.end():]
                ).strip()
                if not candidate or candidate == current:
                    continue
                if self._diverges(candidate):
                    current = candidate
                    shrunk = True
                    break
        return current
