"""Differential oracle: greedy vs. backtracking concretization.

The two concretizers implement the same contract by different
strategies, which makes them oracles for each other (the technique
ASP-based solvers later formalized: divergence between implementations
is evidence of a bug even when neither answer is obviously wrong).

Outcome classification for one abstract request:

``agree-success``
    Both succeed with the *same DAG hash*.  This is the strong case:
    :class:`~repro.core.backtracking.BacktrackingConcretizer` runs the
    greedy pass first, so whenever greedy succeeds the two must be
    byte-identical — any hash mismatch is a real bug.
``rescue``
    Greedy fails, backtracking finds a solution.  Benign **by design**:
    exploring provider alternatives after a greedy dead end is the
    entire point of the backtracking search (the paper's §4.5 hwloc
    example).  Campaigns count rescues but do not flag them.
``agree-error``
    Both fail with typed errors.  Benign: the error *types* may differ
    (greedy reports the first contradiction, the search reports
    exhaustion) and that difference is allowlisted; what matters is
    that neither invented a solution the other proves impossible.
``divergence``
    Anything else — both succeeded with different hashes, or greedy
    succeeded where backtracking failed.  Always a bug; the oracle
    attaches a minimized reproducer.
"""

import re

from repro.compilers.registry import CompilerError
from repro.core.backtracking import BacktrackingConcretizer
from repro.core.concretizer import ConcretizationError, Concretizer
from repro.spec.errors import SpecError
from repro.spec.spec import Spec
from repro.version import VersionParseError

#: benign outcome kinds (everything except DIVERGENCE)
AGREE_SUCCESS = "agree-success"
AGREE_ERROR = "agree-error"
RESCUE = "rescue"
DIVERGENCE = "divergence"

#: error families the oracle treats as "typed, clean failure"
TYPED_ERRORS = (ConcretizationError, SpecError, VersionParseError,
                CompilerError)

#: syntactic components the minimizer may strip, one at a time
_COMPONENT = re.compile(
    r"""
      \s*\^[^\s^]+          # a ^dependency constraint
    | %[A-Za-z0-9_.@:-]+    # a compiler pin
    | @[^%+~=^\s]+          # a version constraint
    | [+~][A-Za-z0-9_]+     # a variant flag
    | =[A-Za-z0-9_.-]+      # an architecture pin
    """,
    re.VERBOSE,
)


class Comparison:
    """The oracle's verdict on one request."""

    def __init__(self, request, kind, greedy_hash=None, backtracking_hash=None,
                 greedy_error=None, backtracking_error=None, attempts=1,
                 minimized=None):
        self.request = request
        self.kind = kind
        self.greedy_hash = greedy_hash
        self.backtracking_hash = backtracking_hash
        #: error *type name*, kept as a string so reports stay JSON-able
        self.greedy_error = greedy_error
        self.backtracking_error = backtracking_error
        #: greedy passes the backtracking search consumed
        self.attempts = attempts
        #: smallest request string that still diverges (DIVERGENCE only)
        self.minimized = minimized

    @property
    def divergent(self):
        return self.kind == DIVERGENCE

    def to_dict(self):
        return {
            "request": self.request,
            "kind": self.kind,
            "greedy_hash": self.greedy_hash,
            "backtracking_hash": self.backtracking_hash,
            "greedy_error": self.greedy_error,
            "backtracking_error": self.backtracking_error,
            "attempts": self.attempts,
            "minimized": self.minimized,
        }

    def __repr__(self):
        return "Comparison(%r, %s)" % (self.request, self.kind)


class DifferentialOracle:
    """Runs both concretizers on requests and classifies the outcomes."""

    def __init__(self, repo, provider_index, compilers, config, policy=None,
                 max_attempts=256):
        self.greedy = Concretizer(repo, provider_index, compilers, config,
                                  policy=policy)
        self.backtracking = BacktrackingConcretizer(
            repo, provider_index, compilers, config, policy=policy,
            max_attempts=max_attempts,
        )

    # -- running one side ---------------------------------------------------
    @staticmethod
    def _run(concretizer, request):
        """(dag_hash, concrete, error_type_name) — exactly one of
        hash/error is set; untyped exceptions propagate (they are crashes
        the caller should see raw)."""
        try:
            concrete = concretizer.concretize(Spec(request))
        except TYPED_ERRORS as e:
            return None, None, type(e).__name__
        return concrete.dag_hash(), concrete, None

    # -- the oracle ---------------------------------------------------------
    def compare(self, request, minimize=True):
        """Classify one request; see the module docstring for the kinds."""
        request = str(request)
        g_hash, g_spec, g_err = self._run(self.greedy, request)
        b_hash, b_spec, b_err = self._run(self.backtracking, request)
        attempts = self.backtracking.last_attempts

        if g_hash is not None and b_hash is not None:
            kind = AGREE_SUCCESS if g_hash == b_hash else DIVERGENCE
        elif g_hash is None and b_hash is None:
            kind = AGREE_ERROR
        elif g_hash is None:
            kind = RESCUE
        else:
            # greedy found a solution the search could not reproduce:
            # the search is strictly more general, so this is a bug
            kind = DIVERGENCE

        minimized = None
        if kind == DIVERGENCE and minimize:
            minimized = self.minimize(request)
        return Comparison(
            request, kind,
            greedy_hash=g_hash, backtracking_hash=b_hash,
            greedy_error=g_err, backtracking_error=b_err,
            attempts=attempts, minimized=minimized,
        )

    # -- reproducer minimization -------------------------------------------
    def _diverges(self, request):
        try:
            return self.compare(request, minimize=False).divergent
        except Exception:  # noqa: BLE001 — a crash while shrinking is
            return False   # not the divergence we are reducing

    def minimize(self, request):
        """Greedy ddmin over syntactic components: repeatedly drop any
        single constraint (version, compiler, variant, arch, ^dep) while
        the result still diverges.  Returns the fixed point."""
        current = str(request)
        shrunk = True
        while shrunk:
            shrunk = False
            for match in list(_COMPONENT.finditer(current)):
                candidate = (
                    current[: match.start()] + current[match.end():]
                ).strip()
                if not candidate or candidate == current:
                    continue
                if self._diverges(candidate):
                    current = candidate
                    shrunk = True
                    break
        return current
