"""Seeded selftest campaigns: the engine behind ``repro-spack selftest``.

A campaign has six phases, all driven entirely by one master seed:

1. **Concretization sweep** — generate a package universe
   (:class:`~repro.testing.generators.RepoGenerator`) and N abstract
   requests over it, run every request through the differential oracle
   (greedy vs. backtracking), and check the full invariant battery on
   each successful result.
2. **Fault sweep** — generate M fault plans
   (:meth:`~repro.testing.faults.FaultPlan.generate`), and for each one
   build a fresh session, arm the plan, install a small real stack,
   then disarm and re-install to prove the store heals.  The first
   ``len(points)`` plans are fixed single-fault plans, one per fault
   point, so every point is demonstrably reached in every campaign
   regardless of what the random remainder draws.
3. **Cache-equivalence sweep** — generate K more abstract requests and
   concretize each one cold (cache bypassed) and warm (served from the
   persistent concretization cache's on-disk payload), for both the
   greedy and backtracking variants.  Warm results must be
   *byte-identical* to cold ones — same ``dag_hash``, same serialized
   node dicts — including under an armed ``concretize.cache.corrupt``
   fault, where the cache must detect the rot and fall back to a cold
   concretization.
4. **Splice-equivalence sweep** — install a DAG whose build-only tool
   changed twice: once served by *splicing* runtime-hash twins out of a
   donor's build cache, once built purely from source.  Both stores
   must agree on every observable — dag hashes, serialized nodes,
   per-node manifest file digests — and pass store verification plus
   the concretization invariant battery; some cases arm a
   ``buildcache.splice_stale`` fault to prove the corrupted-donor
   fallback (a source build) is equivalent too.
5. **Solver sweep** — generate a *conflict-rich* universe (the
   generator's ``conflict_density``/``when_depth``/``provider_overlap``
   knobs turned up, so greedy dead-ends on a meaningful fraction of
   requests) and run every request through the *three-way* oracle:
   greedy vs. backtracking vs. the optimizing solver.  Solver successes
   are re-checked against the concretization invariant battery, and
   every tenth case re-concretizes through a Session with an armed
   ``concretize.cache.corrupt`` fault — the corrupted-cache fallback
   must reproduce the oracle's answer byte-for-byte.  Rescues and
   ``improvement`` outcomes (the solver strictly beating a greedy
   success on its own objective) are counted — they are the point of
   the solver; ``divergence`` and ``optimality-divergence`` fail the
   campaign.
6. **Environment-unification sweep** — over a *name-prefixed*,
   hub-biased universe (shared sub-DAGs by construction), draw seeded
   root sets and unify each one serially and with a 2-wide solve pool.
   A coherent result (one node per shared package, one provider per
   virtual, pool-width-independent ``dag_hash`` set) or a typed
   conflict/root diagnostic passes; anything else is a divergence.

The report is JSONL with sorted keys and no timestamps, hostnames, or
absolute paths, so two same-seed runs produce *byte-identical* files —
that equality is itself asserted by CI.
"""

import json
import os
import shutil

from repro.testing import derive_seed, session_seed
from repro.testing.faults import (
    ALL_FAULT_POINTS,
    BUILDCACHE_SPLICE_STALE,
    FaultPlan,
    SimulatedKill,
)
from repro.testing.generators import (
    GEN_COMPILERS,
    RepoGenerator,
    SpecGenerator,
)
from repro.testing.invariants import check_all, check_concretization
from repro.testing.oracle import AGREE_SUCCESS, RESCUE, DifferentialOracle

#: the spec name the db.write_race fault writes into the index; it has no
#: prefix on disk, so recovery checks skip it by name
from repro.store.database import FOREIGN_NAME  # noqa: E402


class CampaignConfig:
    """Knobs for one campaign run; everything defaults sensibly."""

    def __init__(self, seed=None, specs=200, fault_plans=50, packages=40,
                 virtuals=2, max_attempts=64, fault_target="libdwarf",
                 points=ALL_FAULT_POINTS, cache_specs=200, splice_cases=6,
                 solver_cases=200, env_cases=25):
        self.seed = session_seed() if seed is None else int(seed)
        self.specs = int(specs)
        self.fault_plans = int(fault_plans)
        self.packages = int(packages)
        self.virtuals = int(virtuals)
        self.max_attempts = int(max_attempts)
        #: the builtin-corpus spec each fault plan installs
        self.fault_target = fault_target
        self.points = tuple(points)
        #: generated requests for the cache-equivalence sweep (phase 3)
        self.cache_specs = int(cache_specs)
        #: spliced-vs-built store comparisons (phase 4)
        self.splice_cases = int(splice_cases)
        #: three-way oracle cases over the conflict-rich universe (phase 5)
        self.solver_cases = int(solver_cases)
        #: environment unification cases (phase 6)
        self.env_cases = int(env_cases)

    def to_dict(self):
        return {
            "seed": self.seed,
            "specs": self.specs,
            "fault_plans": self.fault_plans,
            "packages": self.packages,
            "virtuals": self.virtuals,
            "max_attempts": self.max_attempts,
            "fault_target": self.fault_target,
            "points": list(self.points),
            "cache_specs": self.cache_specs,
            "splice_cases": self.splice_cases,
            "solver_cases": self.solver_cases,
            "env_cases": self.env_cases,
        }


class CampaignReport:
    """Everything a campaign learned, serializable as deterministic JSONL."""

    def __init__(self, config):
        self.config = config
        #: one dict per oracle case (request, kind, violations, ...)
        self.oracle_cases = []
        #: one dict per fault plan (plan, outcome, injected, recovered)
        self.fault_cases = []
        #: one dict per (request, variant) cache-equivalence comparison
        self.cache_cases = []
        #: one dict per spliced-vs-built store comparison
        self.splice_cases = []
        #: one dict per three-way solver-sweep case
        self.solver_cases = []
        #: one dict per environment-unification case
        self.env_cases = []

    # -- aggregation --------------------------------------------------------
    def outcome_counts(self):
        counts = {}
        for case in self.oracle_cases:
            counts[case["kind"]] = counts.get(case["kind"], 0) + 1
        return counts

    def divergences(self):
        return [c for c in self.oracle_cases if c["kind"] == "divergence"]

    def violations(self):
        return [c for c in self.oracle_cases if c["violations"]]

    def injection_totals(self):
        totals = {}
        for case in self.fault_cases:
            for point, n in case["injected"].items():
                totals[point] = totals.get(point, 0) + n
        return totals

    def unrecovered(self):
        return [c for c in self.fault_cases if not c["recovered"]]

    def cache_outcome_counts(self):
        counts = {}
        for case in self.cache_cases:
            counts[case["kind"]] = counts.get(case["kind"], 0) + 1
        return counts

    def cache_divergences(self):
        """Warm-cache results that differed from their cold twin."""
        return [c for c in self.cache_cases if c["kind"] == "divergence"]

    def splice_divergences(self):
        """Spliced stores that differed observably from built ones
        (including cases that errored outright)."""
        return [c for c in self.splice_cases if c["kind"] != "match"]

    def solver_outcome_counts(self):
        counts = {}
        for case in self.solver_cases:
            counts[case["kind"]] = counts.get(case["kind"], 0) + 1
        return counts

    def solver_rescues(self):
        return [c for c in self.solver_cases if c["kind"] == "rescue"]

    def solver_divergences(self):
        """Three-way cases where something is wrong: mismatched hashes,
        a suboptimal solver answer, an invariant violation on a solver
        success, or a corrupted-cache re-concretization that did not
        reproduce the oracle's answer."""
        return [
            c for c in self.solver_cases
            if c["kind"] in ("divergence", "optimality-divergence")
            or c.get("violations")
            or c.get("fault") == "mismatch"
        ]

    def env_outcome_counts(self):
        counts = {}
        for case in self.env_cases:
            counts[case["kind"]] = counts.get(case["kind"], 0) + 1
        return counts

    def env_divergences(self):
        """Environment cases where unification is wrong: a shared
        package resolved to more than one node, a shared virtual to more
        than one provider, the unified result depended on the solve pool
        width, or the engine failed with something other than a typed
        per-root/conflict diagnostic."""
        return [c for c in self.env_cases if c["kind"] == "divergence"]

    @property
    def ok(self):
        """The campaign's verdict: no divergence, no invariant violation,
        every requested fault point injected at least once, every
        faulted store healed, every warm-cache concretization
        byte-identical to its cold twin, and every spliced store
        indistinguishable from its built twin.  An oracle-only run
        (``fault_plans=0``) waives the coverage requirement, not the
        others."""
        totals = self.injection_totals()
        covered = self.config.fault_plans == 0 or all(
            totals.get(p, 0) > 0 for p in self.config.points
        )
        return (
            not self.divergences()
            and not self.violations()
            and not self.unrecovered()
            and not self.cache_divergences()
            and not self.splice_divergences()
            and not self.solver_divergences()
            and not self.env_divergences()
            and covered
        )

    def summary(self):
        return {
            "type": "summary",
            "seed": self.config.seed,
            "oracle_outcomes": self.outcome_counts(),
            "divergences": len(self.divergences()),
            "invariant_violations": len(self.violations()),
            "injections": self.injection_totals(),
            "unrecovered": len(self.unrecovered()),
            "cache_outcomes": self.cache_outcome_counts(),
            "cache_divergences": len(self.cache_divergences()),
            "splice_cases": len(self.splice_cases),
            "splice_divergences": len(self.splice_divergences()),
            "solver_cases": len(self.solver_cases),
            "solver_outcomes": self.solver_outcome_counts(),
            "solver_rescues": len(self.solver_rescues()),
            "solver_divergences": len(self.solver_divergences()),
            "env_cases": len(self.env_cases),
            "env_outcomes": self.env_outcome_counts(),
            "env_divergences": len(self.env_divergences()),
            "ok": self.ok,
        }

    # -- serialization ------------------------------------------------------
    def lines(self):
        """The JSONL lines, deterministic for a given seed."""
        def dump(obj):
            return json.dumps(obj, sort_keys=True, separators=(",", ":"))

        yield dump({"type": "campaign", "config": self.config.to_dict()})
        for case in self.oracle_cases:
            yield dump(dict(case, type="oracle-case"))
        for case in self.fault_cases:
            yield dump(dict(case, type="fault-case"))
        for case in self.cache_cases:
            yield dump(dict(case, type="cache-case"))
        for case in self.splice_cases:
            yield dump(dict(case, type="splice-case"))
        for case in self.solver_cases:
            yield dump(dict(case, type="solver-case"))
        for case in self.env_cases:
            yield dump(dict(case, type="env-case"))
        yield dump(self.summary())

    def write(self, path):
        with open(path, "w") as f:
            for line in self.lines():
                f.write(line + "\n")
        return path


# -- phase 1: oracle + invariants sweep --------------------------------------

def _oracle_fixture(config):
    """(repo, provider_index, compilers, cfg) for the generated universe."""
    from repro.compilers.registry import Compiler, CompilerRegistry
    from repro.config.config import Config
    from repro.repo.providers import ProviderIndex

    repo = RepoGenerator(
        derive_seed(config.seed, "repo"),
        count=config.packages,
        virtuals=config.virtuals,
    ).build()
    provider_index = ProviderIndex.from_repo(repo)
    registry = CompilerRegistry(
        Compiler(*cs.split("@")) for cs in GEN_COMPILERS
    )
    cfg = Config()
    cfg.update(
        "defaults",
        {
            "preferences": {
                "compiler_order": [GEN_COMPILERS[0]],
                "architecture": "linux-x86_64",
            }
        },
    )
    return repo, provider_index, registry, cfg


def run_oracle_phase(config, report, log=None):
    repo, provider_index, compilers, cfg = _oracle_fixture(config)
    oracle = DifferentialOracle(
        repo, provider_index, compilers, cfg, max_attempts=config.max_attempts
    )
    generator = SpecGenerator(derive_seed(config.seed, "specs"), repo)

    from repro.spec.spec import Spec

    for i in range(config.specs):
        request = generator.spec(i)
        comparison = oracle.compare(request)
        violations = []
        if comparison.kind == AGREE_SUCCESS:
            concrete = oracle.greedy.concretize(Spec(request))
            violations = check_all(
                request, concrete, repo, provider_index, oracle.greedy
            )
        elif comparison.kind == RESCUE:
            # the solver always holds the rescue (backtracking may have
            # failed too — its provider-only space is a strict subset)
            concrete = oracle.solver.concretize(Spec(request))
            violations = check_concretization(
                request, concrete, repo, provider_index
            )
        report.oracle_cases.append(
            {
                "case": i,
                "request": request,
                "kind": comparison.kind,
                "greedy_error": comparison.greedy_error,
                "backtracking_error": comparison.backtracking_error,
                "attempts": comparison.attempts,
                "minimized": comparison.minimized,
                "violations": violations,
            }
        )
        if log and (i + 1) % 50 == 0:
            log("  oracle: %d/%d cases" % (i + 1, config.specs))
    return report


# -- phase 2: fault sweep ----------------------------------------------------

#: the splice scenario's requests: the two DAGs differ only in the
#: build-only tool's version, so every link/run sub-DAG is a
#: runtime-hash twin — the splice precondition
SPLICE_DONOR_REQUEST = "splicetop ^splicetool@1.0"
SPLICE_TARGET_REQUEST = "splicetop ^splicetool@2.0"


def _splice_repo():
    """A three-package universe built for splice scenarios.

    ``splicetop`` links ``splicelib`` and needs ``splicetool`` only at
    build time; ``splicelib`` itself is built with the tool too.
    Retargeting the tool's version changes every node's ``dag_hash``
    but nobody's ``runtime_hash``.  Packages use the default
    configure/make build so artifacts carry genuine RPATHs — what the
    splice relocation must re-target.
    """
    from repro.directives import depends_on, version
    from repro.directives.directives import DirectiveMeta
    from repro.fetch.mockweb import mock_checksum
    from repro.package.package import Package
    from repro.repo.repository import Repository
    from repro.util.naming import mod_to_class

    repo = Repository(namespace="splice")
    decls = [
        ("splicetool", ("1.0", "2.0"), []),
        ("splicelib", ("1.0",), [("splicetool", "build")]),
        ("splicetop", ("1.0",), [("splicelib", None), ("splicetool", "build")]),
    ]
    for name, versions, deps in decls:
        ns = {
            "url": "https://mock.example.org/%s/%s-1.0.tar.gz" % (name, name),
            "__doc__": "splice scenario package %s" % name,
            "build_units": 2,
            "unit_cost": 0.001,
        }
        for v in versions:
            version(v, mock_checksum(name, v))
        for dep, deptype in deps:
            depends_on(dep, type=deptype)
        repo.add_class(name, DirectiveMeta(mod_to_class(name), (Package,), ns))
    return repo


def _fault_plan(config, index, targets):
    """Plan ``index``: fixed single-fault coverage plans first, then
    seeded random ones."""
    from repro.testing.faults import EXECUTOR_CRASH, Fault

    if index < len(config.points):
        point = config.points[index]
        where = "post-stage" if point == EXECUTOR_CRASH else None
        target = targets[0] if point == EXECUTOR_CRASH else None
        plan = FaultPlan(
            [Fault(point, target=target, where=where)],
            seed=derive_seed(config.seed, "faults", index),
        )
        return plan
    return FaultPlan.generate(
        derive_seed(config.seed, "faults", index),
        targets=targets,
        points=config.points,
    )


def run_fault_phase(config, report, workdir, log=None):
    from repro.errors import ReproError
    from repro.session import Session
    from repro.store.verify import verify_store

    target = config.fault_target
    for p in range(config.fault_plans):
        root = os.path.join(workdir, "plan-%03d" % p)
        session = Session.create(root, install_jobs=1)
        targets = sorted(
            node.name for node in session.concretize(target).traverse()
        )
        plan = _fault_plan(config, p, targets)

        # A buildcache.corrupt fault only fires on the pull path, so any
        # plan carrying it gets a build cache warmed by a sibling session:
        # the faulted install pulls, the corruption is injected, the
        # digest check rejects it, and the executor falls back to source.
        # A buildcache.splice_stale fault fires only while fetching a
        # runtime-hash *twin*, which the builtin target can never produce
        # — those plans swap in the splice universe: a donor publishes
        # the old-tool closure, the faulted install requests the
        # new-tool DAG, and every unchanged link/run sub-DAG arrives by
        # splice (where the fault corrupts the payload and the digest
        # check forces the source-build fallback).
        cache_root = None
        install_target = target
        if BUILDCACHE_SPLICE_STALE in plan.points():
            srepo = _splice_repo()
            cache_root = os.path.join(workdir, "plan-%03d-cache" % p)
            warm_root = os.path.join(workdir, "plan-%03d-warm" % p)
            warm = Session.create(warm_root, packages=srepo, install_jobs=1)
            warm.seed_web()
            warm.enable_buildcache(root=cache_root, push=True)
            warm.install(SPLICE_DONOR_REQUEST, jobs=1)
            shutil.rmtree(warm_root, ignore_errors=True)
            shutil.rmtree(root, ignore_errors=True)
            session = Session.create(root, packages=srepo, install_jobs=1)
            session.seed_web()
            session.enable_buildcache(root=cache_root, pull=True)
            install_target = SPLICE_TARGET_REQUEST
        elif "buildcache.corrupt" in plan.points():
            cache_root = os.path.join(workdir, "plan-%03d-cache" % p)
            warm_root = os.path.join(workdir, "plan-%03d-warm" % p)
            warm = Session.create(warm_root, install_jobs=1)
            warm.enable_buildcache(root=cache_root, push=True)
            warm.install(target, jobs=1)
            shutil.rmtree(warm_root, ignore_errors=True)
            session.enable_buildcache(root=cache_root, pull=True)

        # The target concretization above warmed the session's in-process
        # memo; a concretize.cache.corrupt fault fires inside the on-disk
        # lookup, so drop the memo to force the armed install's
        # concretization back through it.
        if "concretize.cache.corrupt" in plan.points():
            session.forget_concretizations()

        # The telemetry.trace.drop site lives inside the hub's emit
        # loop, which only runs while a sink is attached; give such
        # plans a listener so the point is reachable (the install's
        # outcome must be identical either way — that is the contract).
        if "telemetry.trace.drop" in plan.points():
            from repro.telemetry import MemorySink

            session.telemetry.add_sink(MemorySink())

        session.faults.arm(plan)
        outcome, error = "clean", None
        try:
            session.install(install_target, jobs=1)
        except SimulatedKill:
            outcome, error = "crashed", "SimulatedKill"
        except ReproError as e:
            outcome, error = "errored", type(e).__name__
        finally:
            session.faults.disarm()
        injected = session.faults.injection_counts()
        if outcome == "clean" and injected:
            outcome = "absorbed"  # faults fired but the install survived

        # recovery: a fresh install over the same store must heal it
        recovered = True
        recovery_error = None
        try:
            session.install(install_target, jobs=1)
            issues = [
                i for i in verify_store(session)
                if i.spec.name != FOREIGN_NAME
            ]
            if issues or not session.db.query(install_target.split()[0]):
                recovered = False
                recovery_error = "; ".join(str(i) for i in issues) or "not installed"
        except (ReproError, SimulatedKill) as e:
            recovered = False
            recovery_error = type(e).__name__

        report.fault_cases.append(
            {
                "case": p,
                "plan": plan.to_dict(),
                "outcome": outcome,
                "error": error,
                "injected": injected,
                "recovered": recovered,
                "recovery_error": recovery_error,
            }
        )
        shutil.rmtree(root, ignore_errors=True)
        if cache_root:
            shutil.rmtree(cache_root, ignore_errors=True)
        if log and (p + 1) % 10 == 0:
            log("  faults: %d/%d plans" % (p + 1, config.fault_plans))
    return report


# -- phase 3: cache-equivalence sweep ----------------------------------------

def _node_dicts(spec):
    """Canonical serialization of a concrete DAG for byte comparison."""
    return json.dumps(
        [node.to_node_dict() for node in spec.traverse()], sort_keys=True
    )


def run_cache_phase(config, report, workdir, log=None):
    """Concretize generated requests cold and warm; any byte difference
    is a divergence.

    Every tenth case arms a ``concretize.cache.corrupt`` fault for the
    warm lookup, so the sweep also proves the corruption fallback never
    changes results — the cache must drop the rotten entry and
    re-concretize to the same answer.
    """
    from repro.errors import ReproError
    from repro.session import Session
    from repro.spec.spec import Spec
    from repro.testing.faults import CONCRETIZE_CACHE_CORRUPT, Fault

    repo, _provider_index, compilers, cfg = _oracle_fixture(config)
    session = Session(
        os.path.join(workdir, "cache-phase"), repo, config=cfg,
        compilers=compilers,
    )
    generator = SpecGenerator(derive_seed(config.seed, "cache-specs"), repo)
    for i in range(config.cache_specs):
        request = generator.spec(i)
        for backtrack in (False, True):
            variant = "backtracking" if backtrack else "greedy"
            with_fault = i % 10 == 0
            try:
                cold = session.concretize(
                    Spec(request), backtrack=backtrack, use_cache=False
                )
            except ReproError as e:
                report.cache_cases.append({
                    "case": i, "request": request, "variant": variant,
                    "kind": "error", "error": type(e).__name__,
                    "fault": False,
                })
                continue
            # First warm call persists the entry; forgetting the
            # in-process memo forces the second one through the on-disk
            # payload — the serialization round-trip under test.
            session.concretize(Spec(request), backtrack=backtrack)
            session.forget_concretizations()
            if with_fault:
                session.faults.arm([Fault(CONCRETIZE_CACHE_CORRUPT)])
            try:
                warm = session.concretize(Spec(request), backtrack=backtrack)
            finally:
                if with_fault:
                    session.faults.disarm()
            same = (
                warm.dag_hash() == cold.dag_hash()
                and _node_dicts(warm) == _node_dicts(cold)
            )
            report.cache_cases.append({
                "case": i, "request": request, "variant": variant,
                "kind": "match" if same else "divergence",
                "error": None, "fault": with_fault,
            })
        if log and (i + 1) % 50 == 0:
            log("  cache: %d/%d cases" % (i + 1, config.cache_specs))
    shutil.rmtree(os.path.join(workdir, "cache-phase"), ignore_errors=True)
    return report


# -- phase 4: splice-equivalence sweep ---------------------------------------

def _manifest_files(session, spec):
    """{node name: manifest ``files`` dict} over an installed DAG.

    The digests are root-normalized, so two stores under different
    roots are byte-comparable; ``spliced_from`` and the rest of the
    manifest envelope are deliberately excluded — provenance may say
    where bytes came from, the bytes themselves must not differ.
    """
    from repro.store.layout import METADATA_DIR

    layout = session.store.layout
    out = {}
    for node in spec.traverse():
        path = os.path.join(
            layout.path_for_spec(node), METADATA_DIR, "manifest.json"
        )
        with open(path) as f:
            out[node.name] = json.load(f)["files"]
    return out


def run_splice_phase(config, report, workdir, log=None):
    """Install the splice scenario spliced and from source; any
    observable difference between the two stores is a divergence.

    Per case: a donor session publishes the old-tool closure to a build
    cache; a pulling session installs the new-tool DAG, whose unchanged
    link/run sub-DAGs must arrive by splice; a third session builds the
    same DAG purely from source.  The spliced and built stores must
    agree on ``dag_hash``, serialized node dicts, and per-node manifest
    file digests, and both must pass store verification and the
    concretization invariant battery.  Every third case arms a
    ``buildcache.splice_stale`` fault, so the corrupted-donor fallback
    (a source build mid-splice) is proven equivalent too.
    """
    from repro.core.concretizer import Concretizer
    from repro.errors import ReproError
    from repro.repo.providers import ProviderIndex
    from repro.session import Session
    from repro.store.verify import verify_store
    from repro.testing.faults import Fault

    for i in range(config.splice_cases):
        base = os.path.join(workdir, "splice-%03d" % i)
        with_fault = i % 3 == 2
        srepo = _splice_repo()
        case = {
            "case": i,
            "request": SPLICE_TARGET_REQUEST,
            "fault": with_fault,
            "error": None,
        }
        try:
            cache_root = os.path.join(base, "cache")
            donor = Session.create(
                os.path.join(base, "donor"), packages=srepo, install_jobs=1
            )
            donor.seed_web()
            donor.enable_buildcache(root=cache_root, push=True)
            donor.install(SPLICE_DONOR_REQUEST, jobs=1)

            spliced = Session.create(
                os.path.join(base, "spliced"), packages=srepo, install_jobs=1
            )
            spliced.seed_web()
            spliced.enable_buildcache(root=cache_root, pull=True)
            if with_fault:
                spliced.faults.arm([Fault(BUILDCACHE_SPLICE_STALE)])
            try:
                sspec, sresult = spliced.install(SPLICE_TARGET_REQUEST, jobs=1)
            finally:
                if with_fault:
                    spliced.faults.disarm()

            built = Session.create(
                os.path.join(base, "built"), packages=srepo, install_jobs=1
            )
            built.seed_web()
            bspec, _ = built.install(SPLICE_TARGET_REQUEST, jobs=1)
        except (ReproError, OSError) as e:
            case.update(kind="error", error=type(e).__name__,
                        divergence=[], spliced=[], violations=[])
            report.splice_cases.append(case)
            shutil.rmtree(base, ignore_errors=True)
            continue

        divergence = []
        if sspec.dag_hash() != bspec.dag_hash():
            divergence.append("dag-hash")
        if _node_dicts(sspec) != _node_dicts(bspec):
            divergence.append("node-dicts")
        if _manifest_files(spliced, sspec) != _manifest_files(built, bspec):
            divergence.append("manifests")
        if verify_store(spliced):
            divergence.append("spliced-verify")
        if verify_store(built):
            divergence.append("built-verify")
        spliced_names = sorted(s.spec.name for s in sresult.spliced)
        injected = spliced.faults.injection_counts()
        if not with_fault and not spliced_names:
            # the whole point of the scenario: unchanged link/run
            # sub-DAGs must be served by splice, not rebuilt
            divergence.append("no-splice")
        if with_fault and not injected.get(BUILDCACHE_SPLICE_STALE):
            divergence.append("fault-not-injected")
        provider_index = ProviderIndex.from_repo(srepo)
        violations = check_all(
            SPLICE_TARGET_REQUEST, sspec, srepo, provider_index,
            Concretizer(srepo, provider_index, built.compilers, built.config),
        )
        if violations:
            divergence.append("invariants")
        case.update(
            kind="match" if not divergence else "divergence",
            divergence=divergence,
            spliced=spliced_names,
            violations=violations,
        )
        report.splice_cases.append(case)
        shutil.rmtree(base, ignore_errors=True)
        if log:
            log("  splice: %d/%d cases" % (i + 1, config.splice_cases))
    return report


# -- phase 5: three-way solver sweep ------------------------------------------

def _solver_fixture(config):
    """Like :func:`_oracle_fixture` but conflict-rich: the generator's
    dead-end knobs are turned up so greedy demonstrably fails on part of
    the stream and the solver's rescues are exercised for real."""
    from repro.compilers.registry import Compiler, CompilerRegistry
    from repro.config.config import Config
    from repro.repo.providers import ProviderIndex

    repo = RepoGenerator(
        derive_seed(config.seed, "solver-repo"),
        count=config.packages,
        virtuals=max(3, config.virtuals),
        conflict_density=1.0,
        when_depth=3,
        provider_overlap=0.8,
    ).build()
    provider_index = ProviderIndex.from_repo(repo)
    registry = CompilerRegistry(
        Compiler(*cs.split("@")) for cs in GEN_COMPILERS
    )
    cfg = Config()
    cfg.update(
        "defaults",
        {
            "preferences": {
                "compiler_order": [GEN_COMPILERS[0]],
                "architecture": "linux-x86_64",
            }
        },
    )
    return repo, provider_index, registry, cfg


def run_solver_phase(config, report, workdir, log=None):
    """Three-way differential sweep over the conflict-rich universe.

    Every case goes through the full greedy/backtracking/solver oracle;
    solver successes are re-checked against the concretization
    invariants.  Every tenth case additionally re-concretizes through a
    Session whose on-disk concretization cache is corrupted by an armed
    ``concretize.cache.corrupt`` fault — the fallback must both fire
    (the fault injects) and reproduce the oracle's solver answer.
    """
    from repro.session import Session
    from repro.spec.spec import Spec
    from repro.testing.faults import CONCRETIZE_CACHE_CORRUPT, Fault

    repo, provider_index, compilers, cfg = _solver_fixture(config)
    oracle = DifferentialOracle(
        repo, provider_index, compilers, cfg, max_attempts=config.max_attempts
    )
    generator = SpecGenerator(derive_seed(config.seed, "solver-specs"), repo)
    session = Session(
        os.path.join(workdir, "solver-phase"), repo, config=cfg,
        compilers=compilers,
    )

    for i in range(config.solver_cases):
        request = generator.spec(i)
        comparison = oracle.compare(request)
        violations = []
        if comparison.solver_hash is not None:
            concrete = oracle.solver.concretize(Spec(request))
            violations = check_concretization(
                request, concrete, repo, provider_index
            )

        fault = None
        if i % 10 == 0 and comparison.solver_hash is not None:
            cold = session.concretize(
                Spec(request), concretizer="solver", use_cache=False
            )
            # persist the entry, then force the armed lookup through the
            # on-disk payload the fault corrupts
            session.concretize(Spec(request), concretizer="solver")
            session.forget_concretizations()
            before = session.faults.injection_counts().get(
                CONCRETIZE_CACHE_CORRUPT, 0
            )
            session.faults.arm([Fault(CONCRETIZE_CACHE_CORRUPT)])
            try:
                warm = session.concretize(
                    Spec(request), concretizer="solver"
                )
            finally:
                session.faults.disarm()
            fired = session.faults.injection_counts().get(
                CONCRETIZE_CACHE_CORRUPT, 0
            ) - before
            same = (
                fired > 0
                and cold.dag_hash() == comparison.solver_hash
                and warm.dag_hash() == comparison.solver_hash
            )
            fault = "match" if same else "mismatch"

        report.solver_cases.append(
            {
                "case": i,
                "request": request,
                "kind": comparison.kind,
                "greedy_error": comparison.greedy_error,
                "backtracking_error": comparison.backtracking_error,
                "solver_error": comparison.solver_error,
                "solver_attempts": comparison.solver_attempts,
                "solver_score": comparison.solver_score,
                "best_score": comparison.best_score,
                "minimized": comparison.minimized,
                "violations": violations,
                "fault": fault,
            }
        )
        if log and (i + 1) % 50 == 0:
            log("  solver: %d/%d cases" % (i + 1, config.solver_cases))
    shutil.rmtree(os.path.join(workdir, "solver-phase"), ignore_errors=True)
    return report


# -- phase 6: environment-unification sweep -----------------------------------

def _env_fixture(config):
    """A *prefixed*, hub-biased universe for environment cases.

    ``name_prefix`` keeps generated names out of the builtin corpus's
    namespace (the collision bug this PR fixes); ``hub_bias`` funnels
    dependency edges through a few hub packages so random root sets
    genuinely share sub-DAGs — the thing unification is for.
    """
    from repro.compilers.registry import Compiler, CompilerRegistry
    from repro.config.config import Config

    repo = RepoGenerator(
        derive_seed(config.seed, "env-repo"),
        count=config.packages,
        virtuals=config.virtuals,
        name_prefix="env",
        hub_bias=0.6,
    ).build()
    registry = CompilerRegistry(
        Compiler(*cs.split("@")) for cs in GEN_COMPILERS
    )
    cfg = Config()
    cfg.update(
        "defaults",
        {
            "preferences": {
                "compiler_order": [GEN_COMPILERS[0]],
                "architecture": "linux-x86_64",
            }
        },
    )
    return repo, registry, cfg


def _env_coherence(unified):
    """Violation strings when a unified environment is *not* coherent:
    every shared package must be one node, every virtual one provider."""
    by_name = {}
    by_virtual = {}
    for _, concrete in unified.roots:
        for node in concrete.traverse():
            by_name.setdefault(node.name, set()).add(node.dag_hash())
            for vname in getattr(node, "provided_virtuals", ()):
                by_virtual.setdefault(vname, set()).add(node.name)
    issues = []
    for name in sorted(by_name):
        if len(by_name[name]) > 1:
            issues.append("package %s has %d nodes" % (name, len(by_name[name])))
    for vname in sorted(by_virtual):
        if len(by_virtual[vname]) > 1:
            issues.append(
                "virtual %s has providers %s"
                % (vname, ", ".join(sorted(by_virtual[vname])))
            )
    return issues


def run_env_phase(config, report, workdir, log=None):
    """Unify seeded root sets over the prefixed hub-biased universe.

    Each case draws 2–8 generated abstract requests as an environment's
    roots and unifies them twice — serial and with a 2-wide solve pool.
    A case is a divergence when the unified result is incoherent (a
    shared package with two nodes, a virtual with two providers), when
    the two pool widths disagree on the unified ``dag_hash`` set, or
    when unification dies with anything other than a typed per-root
    error or a :class:`~repro.env.unify.EnvironmentConflictError`
    (both are legitimate outcomes for random root sets and recorded as
    such).
    """
    import random

    from repro.env.unify import EnvironmentConflictError, unify_roots
    from repro.errors import ReproError
    from repro.session import Session

    repo, compilers, cfg = _env_fixture(config)
    session = Session(
        os.path.join(workdir, "env-phase"), repo, config=cfg,
        compilers=compilers,
    )
    generator = SpecGenerator(derive_seed(config.seed, "env-specs"), repo)
    rng = random.Random(derive_seed(config.seed, "env-cases"))
    serial = 0

    def concretize(spec):
        return session.concretize(spec, use_cache=False)

    for i in range(config.env_cases):
        width = rng.randint(2, 8)
        # pre-screen to individually-solvable roots: a root that cannot
        # concretize alone tells us nothing about *unification* (the
        # oracle phases already cover per-root failures exhaustively)
        roots = []
        for _ in range(width * 8):
            if len(roots) >= width:
                break
            request = generator.spec(serial)
            serial += 1
            if request in roots:
                continue
            try:
                concretize(request)
            except ReproError:
                continue
            roots.append(request)
        case = {"case": i, "roots": roots, "error": None}
        try:
            unified = unify_roots(roots, concretize, jobs=1)
        except EnvironmentConflictError as e:
            case.update(kind="conflict", error=e.message,
                        demands=sorted({r for r, _ in e.demands}))
            report.env_cases.append(case)
            continue
        except ReproError as e:
            case.update(kind="root-error", error=type(e).__name__)
            report.env_cases.append(case)
            continue

        issues = _env_coherence(unified)
        pooled = unify_roots(roots, concretize, jobs=2)
        if pooled.dag_hashes() != unified.dag_hashes():
            issues.append("jobs=2 produced a different unified node set")
        case.update(
            kind="divergence" if issues else "unified",
            issues=issues,
            unique_nodes=len(unified.nodes()),
            shared_packages=len(unified.shared_packages()),
            rounds=unified.rounds,
            pins=len(unified.pins),
        )
        report.env_cases.append(case)
        if log and (i + 1) % 10 == 0:
            log("  env: %d/%d cases" % (i + 1, config.env_cases))
    shutil.rmtree(os.path.join(workdir, "env-phase"), ignore_errors=True)
    return report


def run_campaign(config, workdir, log=None):
    """Run all phases; returns the :class:`CampaignReport`."""
    report = CampaignReport(config)
    if log:
        log("campaign seed %d: %d specs, %d fault plans, %d cache specs, "
            "%d splice cases, %d solver cases"
            % (config.seed, config.specs, config.fault_plans,
               config.cache_specs, config.splice_cases, config.solver_cases))
    if config.specs:
        run_oracle_phase(config, report, log=log)
    if config.fault_plans:
        run_fault_phase(config, report, workdir, log=log)
    if config.cache_specs:
        run_cache_phase(config, report, workdir, log=log)
    if config.splice_cases:
        run_splice_phase(config, report, workdir, log=log)
    if config.solver_cases:
        run_solver_phase(config, report, workdir, log=log)
    if config.env_cases:
        run_env_phase(config, report, workdir, log=log)
    return report
