"""Concretizer postcondition checkers (the §3.4 contract, mechanized).

Each checker returns a list of violation strings — empty means the
invariant holds — so callers (pytest, the campaign runner) can collect
every problem in one pass instead of stopping at the first.
:func:`assert_invariants` is the raising wrapper tests use.

Checked invariants:

* **concreteness** — every node fully concrete: one version, a concrete
  compiler, an architecture, every declared variant valued;
* **satisfaction** — the concrete spec strictly satisfies the abstract
  request it came from;
* **closure** — every node's package exists, no virtual survives, and
  every *active* ``depends_on`` is resolved by a satisfying edge
  (virtuals through a provider);
* **sharing** — nodes are unique per name: any two edges to the same
  package name reach the same object (Figure 9's shared sub-DAGs);
* **round-trip** — ``str(spec)`` re-parses and re-concretizes to an
  equal spec, and ``to_dict``/``from_dict`` preserve the DAG and its
  hash (this is what makes provenance files trustworthy);
* **idempotence** — concretizing a concrete spec is the identity;
* **determinism** — two concretizations of the same request are equal,
  including their DAG hashes.
"""

from repro.errors import ReproError


class InvariantViolation(ReproError):
    """One or more concretizer postconditions failed."""

    def __init__(self, violations):
        self.violations = list(violations)
        super().__init__(
            "%d invariant violation(s):\n%s"
            % (len(self.violations), "\n".join("  - " + v for v in self.violations))
        )


def check_concretization(abstract, concrete, repo, provider_index):
    """Concreteness + satisfaction + closure + sharing for one result."""
    violations = []
    if not concrete.concrete:
        violations.append("result of %s is not concrete" % abstract)
    if not concrete.satisfies(abstract, strict=True):
        violations.append(
            "%s does not strictly satisfy its request %s" % (concrete, abstract)
        )

    seen = {}
    for node in concrete.traverse():
        if not repo.exists(node.name):
            if provider_index.is_virtual(node.name):
                violations.append("virtual %r survived concretization" % node.name)
            else:
                violations.append("unknown package %r in result" % node.name)
            continue
        if node.versions.concrete is None:
            violations.append("%s: version not concrete (@%s)" % (node.name, node.versions))
        if node.compiler is None or not node.compiler.concrete:
            violations.append("%s: compiler not concrete" % node.name)
        if node.architecture is None:
            violations.append("%s: architecture not set" % node.name)
        cls = repo.get_class(node.name)
        for vname in cls.variants:
            if vname not in node.variants:
                violations.append("%s: variant %r not valued" % (node.name, vname))
        violations.extend(_check_active_deps(node, cls, provider_index))
        for name, child in node.dependencies.items():
            if name in seen and seen[name] is not child:
                violations.append(
                    "two distinct nodes for %r: sub-DAG sharing broken" % name
                )
            seen[name] = child
    return violations


def _check_active_deps(node, cls, provider_index):
    violations = []
    for dep_name, constraints in cls.dependencies.items():
        for dc in constraints:
            if dc.when is not None and not node.satisfies(dc.when, strict=True):
                continue
            if provider_index.is_virtual(dep_name):
                if not any(
                    dep_name in d.provided_virtuals
                    for d in node.dependencies.values()
                ):
                    violations.append(
                        "%s: active virtual dep %r has no provider edge"
                        % (node.name, dep_name)
                    )
            elif dep_name not in node.dependencies:
                violations.append(
                    "%s: active dep %r missing" % (node.name, dep_name)
                )
            elif not node.dependencies[dep_name].satisfies(dc.spec, strict=True):
                violations.append(
                    "%s: edge to %r does not satisfy declared %s"
                    % (node.name, dep_name, dc.spec)
                )
    return violations


def check_roundtrip(concrete, concretizer=None):
    """Print/parse and dict round-trips preserve the spec and its hash."""
    from repro.spec.spec import Spec

    violations = []
    original_hash = concrete.dag_hash()
    if concrete.dag_hash() != original_hash:
        violations.append("dag_hash unstable across repeated calls")

    as_dict = concrete.to_dict()
    rebuilt = Spec.from_dict(as_dict)
    if rebuilt != concrete:
        violations.append("to_dict/from_dict round-trip changed the spec")
    elif rebuilt.dag_hash() != original_hash:
        violations.append(
            "dict round-trip changed dag_hash: %s -> %s"
            % (original_hash, rebuilt.dag_hash())
        )

    rendered = str(concrete)
    try:
        reparsed = Spec(rendered)
    except ReproError as e:
        violations.append("canonical rendering %r does not re-parse: %s" % (rendered, e))
        return violations
    if concretizer is not None:
        # The flat rendering is a constraint document, not a DAG dump:
        # its ^-clauses become *direct* edges from the root on re-parse
        # (user constraints always do), so edge provenance — and with it
        # the DAG hash — is not preserved.  What must survive the
        # print/parse/concretize trip is the set of concrete nodes; the
        # hash-preserving round-trip is to_dict/from_dict, checked above.
        try:
            reconcretized = concretizer.concretize(reparsed)
        except ReproError as e:
            violations.append(
                "canonical rendering %r does not re-concretize: %s" % (rendered, e)
            )
            return violations
        before = sorted(n.node_str() for n in concrete.traverse())
        after = sorted(n.node_str() for n in reconcretized.traverse())
        if before != after:
            violations.append(
                "print/parse/concretize round-trip changed the node set for %r:"
                " %s -> %s" % (rendered, before, after)
            )
    return violations


def check_idempotence(concretizer, concrete):
    """Concretizing an already-concrete spec must be the identity."""
    violations = []
    again = concretizer.concretize(concrete)
    if again != concrete:
        violations.append("re-concretization changed the spec: %s" % concrete)
    elif again.dag_hash() != concrete.dag_hash():
        violations.append("re-concretization changed dag_hash of %s" % concrete)
    return violations


def check_determinism(concretizer, abstract):
    """Two runs over the same request agree exactly."""
    from repro.spec.spec import Spec

    violations = []
    a = concretizer.concretize(Spec(str(abstract)))
    b = concretizer.concretize(Spec(str(abstract)))
    if a != b:
        violations.append("concretization of %s is nondeterministic" % abstract)
    elif a.dag_hash() != b.dag_hash():
        violations.append("dag_hash of %s is nondeterministic" % abstract)
    return violations


def check_all(abstract, concrete, repo, provider_index, concretizer):
    """Every invariant for one (request, result) pair."""
    violations = []
    violations.extend(check_concretization(abstract, concrete, repo, provider_index))
    violations.extend(check_roundtrip(concrete, concretizer=concretizer))
    violations.extend(check_idempotence(concretizer, concrete))
    violations.extend(check_determinism(concretizer, abstract))
    return violations


def assert_invariants(abstract, concrete, repo, provider_index, concretizer,
                      context=""):
    """Raise :class:`InvariantViolation` if any postcondition fails."""
    violations = check_all(abstract, concrete, repo, provider_index, concretizer)
    if violations:
        if context:
            violations = ["[%s] %s" % (context, v) for v in violations]
        raise InvariantViolation(violations)
