"""Deterministic fault injection for the install pipeline.

Production layers expose *fault sites*: named points where a
:class:`FaultInjector` hanging off the session may fire.  With no plan
armed every site is a single attribute check — the same "disabled path
is free" discipline as the telemetry hub — so the hooks stay
unconditionally in the hot paths:

========================  ====================================================
site                      layer and effect when fired
========================  ====================================================
``fetch.transient``       :meth:`Fetcher._web_get` raises
                          :class:`~repro.fetch.mockweb.TransientWebError`;
                          the bounded retry/backoff path must absorb it.
``fetch.permanent``       same site raises
                          :class:`~repro.fetch.mockweb.NotOnWebError`;
                          must propagate as a clean FetchError, never retried.
``executor.crash``        :class:`~repro.store.executor.BuildExecutor` raises
                          :class:`SimulatedKill` (a BaseException: the
                          executor's own cleanup never sees it, exactly like
                          a SIGKILL) either right after the prefix is created
                          (``where='post-stage'``) or after provenance is
                          written but before database registration
                          (``where='post-build'``) — both leave an orphan
                          prefix that a later install must heal.
``db.write_race``         :meth:`Database.transaction` has a foreign record
                          written into the on-disk index *before* it takes
                          the lock, simulating a concurrent session; the
                          stale-snapshot re-read merge must preserve it.
``lock.timeout``          :meth:`~repro.util.lock.Lock.acquire` raises
                          :class:`~repro.util.lock.LockTimeoutError` without
                          touching the lock file.
``buildcache.corrupt``    :meth:`~repro.store.buildcache.BuildCache.fetch_tarball`
                          corrupts the tarball bytes it just read — the
                          digest check must reject them
                          (:class:`~repro.store.buildcache.DigestMismatchError`)
                          and the executor must fall back to a source build.
``buildcache.splice_stale``
                          :meth:`~repro.store.buildcache.BuildCache.fetch_tarball`
                          (``splice=True`` — fetching a *donor* for binary
                          splicing) corrupts the runtime-hash twin's payload
                          — the digest check must reject it and the
                          executor must fall back to a source build of the
                          requested node.
``concretize.cache.corrupt``
                          :meth:`~repro.core.conc_cache.ConcretizationCache.lookup`
                          corrupts the cached payload it just read — the
                          dag-hash verification must drop the entry and the
                          session must re-concretize from scratch.
``telemetry.trace.drop``  :meth:`~repro.telemetry.hub.Telemetry._emit` has a
                          sink raise :class:`TelemetrySinkError` mid-emit —
                          the hub must drop the record, count it on
                          ``Telemetry.drops``, and the instrumented
                          operation must produce byte-identical results.
========================  ====================================================

A :class:`FaultPlan` is a list of :class:`Fault` records, either
hand-built by tests or generated deterministically from a seed
(:meth:`FaultPlan.generate`) for campaign sweeps.  Every firing is
journaled on the injector and counted on the session's telemetry hub
(``faults.injected`` / ``faults.injected.<point>``), which is how the
campaign report proves each point was reached.
"""

import random

from repro.errors import ReproError

# -- fault points ------------------------------------------------------------

#: a 503-style flaky download: retried with backoff
FETCH_TRANSIENT = "fetch.transient"
#: a 404-style missing URL: permanent, never retried
FETCH_PERMANENT = "fetch.permanent"
#: a kill between stage creation and database registration
EXECUTOR_CRASH = "executor.crash"
#: a concurrent writer mutating the index behind a stale snapshot
DB_WRITE_RACE = "db.write_race"
#: an advisory lock that cannot be acquired in time
LOCK_TIMEOUT = "lock.timeout"
#: a build-cache tarball whose bytes rot between index and extraction
BUILDCACHE_CORRUPT = "buildcache.corrupt"
#: a splice donor (runtime-hash twin) served with a stale/corrupt payload;
#: the digest check must reject it and splicing must fall back to source
BUILDCACHE_SPLICE_STALE = "buildcache.splice_stale"
#: a concretization-cache payload whose bytes rot before deserialization;
#: the dag_hash verification must reject it and re-concretize from scratch
CONCRETIZE_CACHE_CORRUPT = "concretize.cache.corrupt"
#: a telemetry sink that raises mid-emit; the hub must drop the record
#: (counting it on ``Telemetry.drops``) and the instrumented operation
#: must finish with byte-identical results — observability never
#: changes outcomes.  Only reachable while a sink is attached (with no
#: sinks the emit path is never entered).
TELEMETRY_TRACE_DROP = "telemetry.trace.drop"

ALL_FAULT_POINTS = (
    FETCH_TRANSIENT,
    FETCH_PERMANENT,
    EXECUTOR_CRASH,
    DB_WRITE_RACE,
    LOCK_TIMEOUT,
    BUILDCACHE_CORRUPT,
    BUILDCACHE_SPLICE_STALE,
    CONCRETIZE_CACHE_CORRUPT,
    TELEMETRY_TRACE_DROP,
)

#: the executor's two crash sites (see the table above)
CRASH_SITES = ("post-stage", "post-build")


class TelemetrySinkError(Exception):
    """What the ``telemetry.trace.drop`` site raises mid-emit.

    Deliberately a plain :class:`Exception` (not a ReproError): the
    hub's emit loop must absorb *any* sink failure, not just the ones
    it knows about.
    """


class SimulatedKill(BaseException):
    """The process 'died' at a fault site.

    Deliberately *not* an :class:`Exception`: the executor's partial-
    prefix cleanup catches ``Exception``, and a real SIGKILL would never
    run it.  Tests and the campaign runner catch this explicitly.
    """

    def __init__(self, point, target, where=None):
        detail = " at %s" % where if where else ""
        super().__init__(
            "simulated kill: %s(%s)%s" % (point, target or "*", detail)
        )
        self.point = point
        self.target = target
        self.where = where


class FaultPlanError(ReproError):
    """A fault plan was constructed or armed incorrectly."""


class Fault:
    """One planned failure: where, at whom, and how often.

    Parameters
    ----------
    point:
        One of :data:`ALL_FAULT_POINTS`.
    target:
        Package name the fault is scoped to, or None for "any" (sites
        that have no package context, like the database index, ignore
        the target).
    after:
        Number of matching hits to let pass before the first firing.
    times:
        How many times to fire (transient faults with ``times <=
        retries`` are recoverable; more are permanent-by-exhaustion).
    where:
        For ``executor.crash``: which crash site, from
        :data:`CRASH_SITES` (None matches either).
    """

    __slots__ = ("point", "target", "after", "times", "where", "seen", "fired")

    def __init__(self, point, target=None, after=0, times=1, where=None):
        if point not in ALL_FAULT_POINTS:
            raise FaultPlanError("Unknown fault point %r" % point)
        if where is not None and where not in CRASH_SITES:
            raise FaultPlanError("Unknown crash site %r" % where)
        self.point = point
        self.target = target
        self.after = int(after)
        self.times = int(times)
        self.where = where
        #: matching hits observed so far (armed state)
        self.seen = 0
        #: firings so far (armed state)
        self.fired = 0

    def matches(self, point, target, where):
        if point != self.point:
            return False
        if self.target is not None and target != self.target:
            return False
        if self.where is not None and where != self.where:
            return False
        return True

    @property
    def exhausted(self):
        return self.fired >= self.times

    def to_dict(self):
        return {
            "point": self.point,
            "target": self.target,
            "after": self.after,
            "times": self.times,
            "where": self.where,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            data["point"],
            target=data.get("target"),
            after=data.get("after", 0),
            times=data.get("times", 1),
            where=data.get("where"),
        )

    def __repr__(self):
        return "Fault(%s, target=%r, after=%d, times=%d%s)" % (
            self.point,
            self.target,
            self.after,
            self.times,
            ", where=%r" % self.where if self.where else "",
        )


class FaultPlan:
    """An ordered set of faults, optionally generated from a seed."""

    def __init__(self, faults=(), seed=None):
        self.faults = list(faults)
        self.seed = seed

    @classmethod
    def generate(cls, seed, targets=(), points=ALL_FAULT_POINTS, max_faults=3):
        """A deterministic random plan: 1..max_faults faults drawn from
        ``points``, scoped to ``targets`` (package names) where the
        point has package context.

        The same ``(seed, targets, points)`` produce the same plan on
        every machine — plans are part of a campaign's replayable state.
        """
        rng = random.Random(seed)
        targets = list(targets)
        count = rng.randint(1, max(1, int(max_faults)))
        faults = []
        for _ in range(count):
            point = rng.choice(list(points))
            target = rng.choice(targets) if targets and rng.random() < 0.8 else None
            where = rng.choice(CRASH_SITES) if point == EXECUTOR_CRASH else None
            # transient faults usually stay within the default retry
            # budget (recoverable); occasionally exceed it (exhaustion)
            times = rng.choice((1, 1, 2, 4)) if point == FETCH_TRANSIENT else 1
            faults.append(
                Fault(point, target=target, after=rng.randint(0, 1),
                      times=times, where=where)
            )
        return cls(faults, seed=seed)

    def points(self):
        """The distinct fault points this plan can fire."""
        return sorted({f.point for f in self.faults})

    def to_dict(self):
        return {"seed": self.seed, "faults": [f.to_dict() for f in self.faults]}

    @classmethod
    def from_dict(cls, data):
        return cls(
            [Fault.from_dict(fd) for fd in data.get("faults", [])],
            seed=data.get("seed"),
        )

    def __len__(self):
        return len(self.faults)

    def __repr__(self):
        return "FaultPlan(seed=%r, %d faults)" % (self.seed, len(self.faults))


class FaultInjector:
    """The per-session fault switchboard production layers consult.

    Inert until :meth:`arm` attaches a plan: ``hit()`` with no plan is a
    single ``if`` on an attribute.  Armed, each matching site firing is
    journaled, counted on the telemetry hub, and turned into the
    appropriate exception (or returned to the site, for effects only
    the layer itself can apply, like the database's foreign write).
    """

    def __init__(self, telemetry=None):
        self.plan = None
        self.telemetry = telemetry
        #: (point, target, where) tuples, in firing order
        self.journal = []

    # -- arming -----------------------------------------------------------
    def arm(self, plan):
        """Attach a plan (resetting its armed state) and start injecting."""
        if isinstance(plan, (list, tuple)):
            plan = FaultPlan(plan)
        for fault in plan.faults:
            fault.seen = 0
            fault.fired = 0
        self.plan = plan
        return plan

    def disarm(self):
        """Stop injecting; the journal is kept for inspection."""
        self.plan = None

    @property
    def armed(self):
        return self.plan is not None

    def injection_counts(self):
        """{fault point: firings so far} from the journal."""
        counts = {}
        for point, _target, _where in self.journal:
            counts[point] = counts.get(point, 0) + 1
        return counts

    # -- the sites call this ----------------------------------------------
    def hit(self, point, target=None, where=None):
        """Consult the plan at a fault site.

        Returns None (almost always) or the fired :class:`Fault` for
        sites that apply their own effect; raises the point's mapped
        exception otherwise.  ``target`` is the package name when the
        site has one; ``where`` disambiguates the executor's crash
        sites.
        """
        if self.plan is None:
            return None
        for fault in self.plan.faults:
            if fault.exhausted or not fault.matches(point, target, where):
                continue
            fault.seen += 1
            if fault.seen <= fault.after:
                continue
            fault.fired += 1
            self._record(point, target, where)
            return self._apply(fault, point, target, where)
        return None

    # -- effects ----------------------------------------------------------
    def _record(self, point, target, where):
        self.journal.append((point, target, where))
        if self.telemetry is not None:
            self.telemetry.count("faults.injected")
            self.telemetry.count("faults.injected.%s" % point)
            self.telemetry.event(
                "fault.injected", point=point, target=target, where=where
            )

    def _apply(self, fault, point, target, where):
        if point == FETCH_TRANSIENT:
            from repro.fetch.mockweb import TransientWebError

            raise TransientWebError(
                "fault://%s" % (target or "any"), fault.times - fault.fired
            )
        if point == FETCH_PERMANENT:
            from repro.fetch.mockweb import NotOnWebError

            raise NotOnWebError("fault://%s" % (target or "any"))
        if point == EXECUTOR_CRASH:
            raise SimulatedKill(point, target, where)
        if point == LOCK_TIMEOUT:
            from repro.util.lock import LockTimeoutError

            raise LockTimeoutError(target or "<fault-injected>", 0.0)
        if point == TELEMETRY_TRACE_DROP:
            raise TelemetrySinkError("sink raised mid-emit (injected)")
        # DB_WRITE_RACE, BUILDCACHE_CORRUPT, BUILDCACHE_SPLICE_STALE,
        # CONCRETIZE_CACHE_CORRUPT: the site applies the effect itself
        # (foreign index write / byte corruption of the payload it just
        # read).
        return fault

    def __repr__(self):
        return "FaultInjector(%s, %d journaled)" % (
            repr(self.plan) if self.plan else "disarmed",
            len(self.journal),
        )
