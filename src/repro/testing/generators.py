"""Deterministic generative models: package universes, specs, fuzz text.

Everything here is driven by ``random.Random(seed)`` — no ambient
entropy, no ``hash()`` — so a single integer replays a whole campaign
on any machine.  These generators replace the ad-hoc ones that used to
live inside ``tests/spec/test_parser_fuzz.py`` and
``tests/core/test_concretize_properties.py``:

* :class:`RepoGenerator` synthesizes a layered-DAG package repository
  with versions, boolean variants, virtual interfaces with competing
  providers, and conditional (``when=``) dependencies — the full
  directive surface the concretizer has to reason about, in
  random-but-reproducible combinations.
* :class:`SpecGenerator` draws abstract requests over such a repo:
  version ranges, compiler pins, architectures, variant flags, and
  forced ``^provider`` choices — including occasionally-unsatisfiable
  ones, which the oracle and invariant layers expect to fail with
  *typed* errors.
* :class:`SpecTextGenerator` emits parser fuzz inputs: raw alphabet
  soup, token-assembled plausible specs, and mutations of valid
  renderings.
"""

import random

from repro.directives import conflicts, depends_on, provides, variant, version
from repro.directives.directives import DirectiveMeta
from repro.fetch.mockweb import mock_checksum
from repro.package.package import Package
from repro.repo.repository import Repository
from repro.util.naming import mod_to_class

#: compilers the generated universes assume registered (the Session
#: default toolchain covers all of these)
GEN_COMPILERS = ("gcc@4.9.2", "gcc@4.7.3", "intel@15.0.1", "clang@3.5.0")

#: architectures requests may pin
GEN_ARCHES = ("linux-x86_64", "bgq")

#: variant names the generator draws from
GEN_VARIANT_NAMES = ("shared", "debug", "mpi", "threads")


def _make_package(name, versions, dep_decls, provided=None, variants=(),
                  conflict_decls=()):
    """Build one Package subclass via the real directive machinery.

    ``dep_decls`` is a list of ``(dep_name, constraint_suffix, when)``
    tuples; constraint suffix is appended to the dependency name (e.g.
    ``"@2:"``), ``when`` is a predicate string or None.  ``provided``
    may be one virtual name or a tuple of them (overlap providers);
    ``conflict_decls`` is a list of ``conflicts()`` spec strings — the
    greedy dead ends the solver universes are seeded with.
    """
    ns = {
        "homepage": "https://mock.example.org/%s" % name,
        "url": "https://mock.example.org/%s/%s-%s.tar.gz" % (name, name, versions[0]),
        "__doc__": "Generated package %s (repro.testing.generators)." % name,
        "build_units": 2,
        "unit_cost": 0.001,
    }
    for v in versions:
        version(v, mock_checksum(name, v))
    for dep_name, suffix, when in dep_decls:
        depends_on(dep_name + suffix, when=when)
    if provided:
        names = (provided,) if isinstance(provided, str) else provided
        for vname in names:
            provides(vname)
    for vname in variants:
        variant(vname, default=(vname == "shared"),
                description="generated variant %s" % vname)
    for conflict_spec in conflict_decls:
        conflicts(conflict_spec)
    return DirectiveMeta(mod_to_class(name), (Package,), ns)


class RepoGenerator:
    """Synthesizes a deterministic random package repository.

    Structure guarantees (so generated universes are always plannable):

    * package *i* only depends on packages with smaller indices — the
      concrete DAG is acyclic by construction;
    * virtual providers are leaves, so provider substitution can never
      introduce a cycle;
    * every virtual has at least two providers, so the backtracking
      concretizer always has a real choice point to explore.

    Three *conflict knobs* turn a benign universe into one that forces
    real search (all default to off, and their draws come from seeds
    derived separately from the base stream, so a knobless build is
    byte-identical to what older seeds produced):

    * ``conflict_density`` (0..1) — per virtual, probability of adding
      an hwloc-style dead-end cluster: a new *alphabetically preferred*
      provider pinned to ``anchor-i@1.0`` plus a ``clash-i`` consumer
      that needs ``anchor-i@2.0`` (greedy picks the poisoned provider
      and dies; provider search rescues).  Also scales a family of
      solver-only dead ends — packages whose *default* compiler,
      variant, or version hits a declared ``conflicts()``, which no
      amount of provider re-enumeration can fix.
    * ``when_depth`` (int) — adds conditional dependency chains
      ``chain-k-0 → … → chain-k-(depth-1)`` whose every edge is gated
      on ``when="@2:"``, exercising fixpoint re-expansion under version
      deviations.
    * ``provider_overlap`` (0..1) — per adjacent virtual pair,
      probability of one leaf provider implementing *both* interfaces,
      coupling otherwise independent provider choices.
    """

    def __init__(self, seed, count=40, virtuals=2, namespace="generated",
                 conflict_density=0.0, when_depth=0, provider_overlap=0.0,
                 name_prefix=None, hub_bias=0.0, max_deps=3):
        self.seed = int(seed)
        self.count = max(4, int(count))
        self.virtuals = max(0, int(virtuals))
        self.namespace = namespace
        self.conflict_density = float(conflict_density)
        self.when_depth = max(0, int(when_depth))
        self.provider_overlap = float(provider_overlap)
        #: every generated package name gets this dash-joined prefix, so
        #: two generated universes (or a generated universe plus the
        #: builtin corpus) can share one Session's RepoPath without one
        #: repo's names shadowing the other's
        self.name_prefix = name_prefix
        #: preferential attachment toward low-index "hub" packages — the
        #: cmake/python/mpi shape real repositories have; 0 keeps the
        #: historic uniform draw (and its exact byte stream)
        self.hub_bias = float(hub_bias)
        self.max_deps = max(0, int(max_deps))

    def _pname(self, base):
        if self.name_prefix:
            return "%s-%s" % (self.name_prefix, base)
        return base

    def virtual_name(self, i):
        return self._pname("vif-%d" % i)

    def package_name(self, i):
        return self._pname("gen-%03d" % i)

    def build(self):
        """Generate and return the Repository."""
        rng = random.Random(self.seed)
        repo = Repository(namespace=self.namespace)
        names = []

        # virtual interfaces first: 2-3 leaf providers each
        provider_of = {}
        for vi in range(self.virtuals):
            vname = self.virtual_name(vi)
            provider_of[vname] = []
            for pi in range(rng.randint(2, 3)):
                pname = "%s-impl-%d" % (vname, pi)
                versions = self._draw_versions(rng)
                cls = _make_package(pname, versions, [], provided=vname)
                repo.add_class(pname, cls)
                provider_of[vname].append(pname)

        for i in range(self.count):
            name = self.package_name(i)
            versions = self._draw_versions(rng)
            variants = self._draw_variants(rng)
            dep_decls = self._draw_dependencies(rng, names, variants, versions)
            if provider_of and rng.random() < 0.25:
                vname = rng.choice(sorted(provider_of))
                when = self._draw_when(rng, variants, versions)
                dep_decls.append((vname, "", when))
            cls = _make_package(name, versions, dep_decls, variants=variants)
            repo.add_class(name, cls)
            names.append(name)

        # conflict knobs draw from their own derived streams so the
        # base universe above never shifts under older seeds
        if self.conflict_density > 0:
            self._add_conflict_clusters(repo, provider_of)
            self._add_solver_dead_ends(repo)
        if self.when_depth > 0:
            self._add_when_chains(repo)
        if self.provider_overlap > 0:
            self._add_overlap_providers(repo)
        return repo

    # -- conflict knobs ------------------------------------------------------
    def _knob_rng(self, stream):
        from repro.testing import derive_seed

        return random.Random(derive_seed(self.seed, "knob", stream))

    def _add_conflict_clusters(self, repo, provider_of):
        """Per virtual: a poisoned *preferred* provider plus a consumer
        whose anchor pin contradicts it (the paper's §4.5 hwloc shape).

        The new provider is named ``vif-i-aaa-impl`` so the default
        policy's name tie-break ranks it *first*; it pins
        ``anchor-i@1.0`` while ``clash-i`` needs ``anchor-i@2.0``, so
        greedy dies inside the preferred provider and only provider
        search (or better) escapes to ``vif-i-impl-0``.
        """
        rng = self._knob_rng("conflict")
        for vi in range(self.virtuals):
            if rng.random() >= self.conflict_density:
                continue
            vname = self.virtual_name(vi)
            anchor = self._pname("anchor-%d" % vi)
            repo.add_class(anchor, _make_package(anchor, ["1.0", "2.0"], []))
            poisoned = "%s-aaa-impl" % vname
            repo.add_class(poisoned, _make_package(
                poisoned, ["1.0"], [(anchor, "@1.0", None)], provided=vname,
            ))
            clash = self._pname("clash-%d" % vi)
            repo.add_class(clash, _make_package(
                clash, ["1.0"], [(vname, "", None), (anchor, "@2.0", None)],
            ))

    def _add_solver_dead_ends(self, repo):
        """Packages whose policy-*default* choice hits a declared
        ``conflicts()``: only a variant flip, version deviation, or
        compiler change rescues them — greedy and the provider-only
        backtracker both fail, the optimizing solver succeeds."""
        rng = self._knob_rng("dead-ends")
        n = max(1, int(round(self.conflict_density * self.count / 5.0)))
        for i in range(n):
            kind = ("hardpick", "varpick", "verpick")[i % 3]
            name = self._pname("%s-%d" % (kind, i))
            if kind == "hardpick":
                # default compiler_order is gcc-first everywhere
                cls = _make_package(name, ["1.0"], [],
                                    conflict_decls=["%gcc"])
            elif kind == "varpick":
                cls = _make_package(name, ["1.0"], [], variants=("shared",),
                                    conflict_decls=["+shared"])
            else:
                # 2.0 is newest (and checksummed) so policy prefers it
                cls = _make_package(name, ["1.0", "2.0"], [],
                                    conflict_decls=["@2.0"])
            repo.add_class(name, cls)
            # occasionally bury the dead end one level down so rescue
            # requires deviating a *dependency's* parameters
            if rng.random() < 0.5:
                consumer = "needs-%s" % name
                repo.add_class(consumer, _make_package(
                    consumer, ["1.0"], [(name, "", None)],
                ))

    def _add_when_chains(self, repo):
        """Conditional chains: every edge is gated on ``when="@2:"`` and
        every member's preferred version activates it, so deviating any
        member's version to 1.x prunes the rest of the chain."""
        chains = max(1, self.count // 10)
        for k in range(chains):
            # build leaf-first so each link's dependency already exists
            for j in reversed(range(self.when_depth)):
                name = self._pname("chain-%d-%d" % (k, j))
                deps = []
                if j + 1 < self.when_depth:
                    deps.append(("chain-%d-%d" % (k, j + 1), "", "@2:"))
                repo.add_class(name, _make_package(name, ["1.5", "2.5"], deps))

    def _add_overlap_providers(self, repo):
        """One leaf provider implementing two adjacent virtuals; its
        ``aaa`` name makes it the preferred pick for both, so choosing
        a provider for one interface constrains the other."""
        rng = self._knob_rng("overlap")
        for vi in range(self.virtuals - 1):
            if rng.random() >= self.provider_overlap:
                continue
            name = self._pname("dual-%d-aaa-impl" % vi)
            repo.add_class(name, _make_package(
                name, ["1.0"],
                [],
                provided=(self.virtual_name(vi), self.virtual_name(vi + 1)),
            ))

    # -- draws -------------------------------------------------------------
    def _draw_versions(self, rng):
        n = rng.randint(2, 4)
        return ["%d.%d" % (major + 1, rng.randint(0, 9)) for major in range(n)]

    def _draw_variants(self, rng):
        if rng.random() < 0.5:
            return ()
        return tuple(
            rng.sample(GEN_VARIANT_NAMES, rng.randint(1, 2))
        )

    def _draw_when(self, rng, variants, versions):
        """A predicate for a conditional dependency, or None."""
        roll = rng.random()
        if roll < 0.55 or (not variants and roll < 0.8):
            return None
        if variants and roll < 0.8:
            flag = rng.choice(variants)
            return ("+" if rng.random() < 0.7 else "~") + flag
        return "@%s:" % versions[rng.randrange(len(versions))].split(".")[0]

    def _draw_dependencies(self, rng, names, variants, versions):
        if not names:
            return []
        if self.hub_bias > 0:
            deps = self._draw_hubbed_deps(rng, names)
        else:
            # the historic uniform draw — byte-for-byte what older seeds
            # consumed from the stream, so knobless universes never shift
            deps = rng.sample(names, min(len(names), rng.randint(0, 3)))
        decls = []
        for dep in deps:
            suffix = ""
            if rng.random() < 0.2:
                # a version-range constraint on the dependency edge
                suffix = "@%d:" % rng.randint(1, 2)
            decls.append((dep, suffix, self._draw_when(rng, variants, versions)))
        return decls

    def _draw_hubbed_deps(self, rng, names):
        """Preferential attachment: a slice of each dependency draw goes
        to the earliest ~2% of packages (the universe's cmake/python/mpi
        analogues), the rest stays uniform — real repositories are a few
        hubs with enormous in-degree plus a long uniform tail."""
        hubs = names[: max(1, len(names) // 50)]
        picked = []
        for _ in range(rng.randint(0, self.max_deps)):
            pool = hubs if rng.random() < self.hub_bias else names
            dep = pool[rng.randrange(len(pool))]
            if dep not in picked:
                picked.append(dep)
        return picked


class DeadEndScenario:
    """One known greedy-dead-end universe: a tiny repo, the request that
    kills the greedy concretizer, which searcher is expected to rescue
    it (``"backtracking"`` — provider re-enumeration suffices — or
    ``"solver"`` — a version/variant/compiler deviation is required),
    and config preference overrides the scenario assumes."""

    def __init__(self, label, repo, request, rescuer, config=None):
        self.label = label
        self.repo = repo
        self.request = request
        self.rescuer = rescuer
        self.config = config or {}

    def __repr__(self):
        return "DeadEndScenario(%r, rescuer=%r)" % (self.label, self.rescuer)


def greedy_dead_end_corpus():
    """Hand-built scenarios where greedy provably dead-ends (§4.5).

    Deterministic — no randomness at all — so the corpus doubles as a
    regression suite: every scenario's greedy run must fail with a
    typed error, and the named rescuer must succeed.  Scenarios assume
    the :data:`GEN_COMPILERS` registry and gcc-first compiler order.
    """
    scenarios = []

    # 1. The paper's hwloc case: preferred MPI pins the wrong hwloc.
    repo = Repository(namespace="deadend.hwloc")
    repo.add_class("hwloc", _make_package("hwloc", ["1.9", "1.8"], []))
    repo.add_class("ampi", _make_package(
        "ampi", ["1.0"], [("hwloc", "@1.8", None)], provided="mpi2"))
    repo.add_class("bmpi", _make_package(
        "bmpi", ["1.0"], [("hwloc", "@1.9", None)], provided="mpi2"))
    repo.add_class("app", _make_package(
        "app", ["1.0"], [("hwloc", "@1.9", None), ("mpi2", "", None)]))
    scenarios.append(DeadEndScenario(
        "hwloc-version-pin", repo, "app", "backtracking",
        config={"preferences": {"providers": {"mpi2": ["ampi", "bmpi"]}}},
    ))

    # 2. Two coupled virtuals: only the dispreferred pair is consistent.
    repo = Repository(namespace="deadend.pair")
    repo.add_class("libx", _make_package("libx", ["2", "1"], []))
    for vname, tag in (("vinta", "a"), ("vintb", "b")):
        repo.add_class("%s1" % tag, _make_package(
            "%s1" % tag, ["1.0"], [("libx", "@1", None)], provided=vname))
        repo.add_class("%s2" % tag, _make_package(
            "%s2" % tag, ["1.0"], [("libx", "@2", None)], provided=vname))
    repo.add_class("pairapp", _make_package(
        "pairapp", ["1.0"],
        [("vinta", "", None), ("vintb", "", None), ("libx", "@2", None)]))
    scenarios.append(DeadEndScenario(
        "provider-pair", repo, "pairapp", "backtracking",
        config={"preferences": {"providers": {"vinta": ["a1", "a2"],
                                              "vintb": ["b1", "b2"]}}},
    ))

    # 3. Default compiler conflicts: only a %-deviation rescues.
    repo = Repository(namespace="deadend.compiler")
    repo.add_class("nogcc", _make_package(
        "nogcc", ["1.0"], [], conflict_decls=["%gcc"]))
    scenarios.append(DeadEndScenario(
        "compiler-conflict", repo, "nogcc", "solver"))

    # 4. Default variant conflicts: only a flip rescues.
    repo = Repository(namespace="deadend.variant")
    repo.add_class("noshared", _make_package(
        "noshared", ["1.0"], [], variants=("shared",),
        conflict_decls=["+shared"]))
    scenarios.append(DeadEndScenario(
        "variant-conflict", repo, "noshared", "solver"))

    # 5. Preferred version conflicts: only an older pick rescues.
    repo = Repository(namespace="deadend.version")
    repo.add_class("nonewest", _make_package(
        "nonewest", ["1.0", "2.0"], [], conflict_decls=["@2.0"]))
    scenarios.append(DeadEndScenario(
        "version-conflict", repo, "nonewest", "solver"))

    # 6. A when= chain ending at an impossible pin: deviating the chain
    # head's version to 1.x prunes the poisoned tail.
    repo = Repository(namespace="deadend.chain")
    repo.add_class("pin", _make_package("pin", ["9"], []))
    repo.add_class("tail", _make_package(
        "tail", ["1.0"], [("pin", "@1:2", None)]))
    repo.add_class("head", _make_package(
        "head", ["1.5", "2.5"], [("tail", "", "@2:")]))
    scenarios.append(DeadEndScenario("deep-chain", repo, "head", "solver"))

    return scenarios


class SpecGenerator:
    """Draws abstract requests over a repository, deterministically.

    ``specs(n)`` yields ``n`` request strings; ``spec(i)`` regenerates
    request *i* alone (replay of one campaign case without rerunning
    the stream before it).
    """

    def __init__(self, seed, repo, compilers=GEN_COMPILERS, arches=GEN_ARCHES):
        self.seed = int(seed)
        self.repo = repo
        self.compilers = tuple(compilers)
        self.arches = tuple(arches)
        self._names = sorted(repo.all_package_names())

    def spec(self, i):
        """Request *i* of this generator's deterministic stream."""
        from repro.testing import derive_seed

        rng = random.Random(derive_seed(self.seed, "spec", i))
        return self._draw(rng)

    def specs(self, n):
        return [self.spec(i) for i in range(n)]

    def _draw(self, rng):
        name = rng.choice(self._names)
        cls = self.repo.get_class(name)
        parts = [name]

        if rng.random() < 0.4 and cls.versions:
            v = rng.choice(sorted(cls.versions))
            style = rng.random()
            if style < 0.5:
                parts.append("@%s" % v)
            elif style < 0.75:
                parts.append("@%s:" % str(v).split(".")[0])
            else:
                parts.append("@:%s" % v)
        if rng.random() < 0.35:
            compiler = rng.choice(self.compilers)
            if rng.random() < 0.5:
                compiler = compiler.split("@")[0]
            parts.append("%%%s" % compiler)
        if cls.variants and rng.random() < 0.4:
            vname = rng.choice(sorted(cls.variants))
            parts.append(("+" if rng.random() < 0.6 else "~") + vname)
        if rng.random() < 0.25:
            parts.append("=%s" % rng.choice(self.arches))
        if rng.random() < 0.2:
            # force a dependency constraint; may be a provider pin, may
            # be an unrelated package (a typed error both concretizers
            # must agree on)
            parts.append(" ^%s" % rng.choice(self._names))
        return "".join(parts)


#: character soup the parser must survive (superset of spec syntax)
FUZZ_ALPHABET = "abcxyz019._-@:%+~^= "


class SpecTextGenerator:
    """Parser fuzz inputs: soup, assembled tokens, and mutants.

    Three deterministic streams, each addressable by case index so a
    failing case replays in isolation:

    * :meth:`soup` — length-bounded random text over the spec alphabet;
    * :meth:`plausible` — token-assembled spec-shaped strings (names,
      versions, compilers, variants, arch, ``^`` chains) that are
      *usually* valid;
    * :meth:`mutant` — a plausible string with random character edits
      (insert/delete/replace), probing error paths near valid syntax.
    """

    NAMES = ("libelf", "mpileaks", "a", "xy-z0", "pkg_1", "m.p.i")
    VERSIONS = ("1.0", "2", "0.8.11:0.8.13", ":3", "4:", "1.0,2.1")
    COMPILERS = ("gcc", "gcc@4.9", "intel@15.0.1", "clang")
    ARCHES = ("linux-x86_64", "bgq")

    def __init__(self, seed):
        self.seed = int(seed)

    def _rng(self, stream, i):
        from repro.testing import derive_seed

        return random.Random(derive_seed(self.seed, "text", stream, i))

    def soup(self, i, max_len=40):
        rng = self._rng("soup", i)
        return "".join(
            rng.choice(FUZZ_ALPHABET) for _ in range(rng.randint(0, max_len))
        )

    def unicode_soup(self, i, max_len=30):
        rng = self._rng("unicode", i)
        return "".join(
            chr(rng.randint(1, 0x2FFF)) for _ in range(rng.randint(1, max_len))
        )

    def plausible(self, i):
        rng = self._rng("plausible", i)
        parts = [rng.choice(self.NAMES)]
        if rng.random() < 0.5:
            parts.append("@" + rng.choice(self.VERSIONS))
        if rng.random() < 0.4:
            parts.append("%" + rng.choice(self.COMPILERS))
        if rng.random() < 0.4:
            parts.append(rng.choice("+~") + rng.choice(("shared", "debug", "mpi")))
        if rng.random() < 0.3:
            parts.append("=" + rng.choice(self.ARCHES))
        text = "".join(parts)
        for _ in range(rng.randint(0, 2)):
            text += " ^" + rng.choice(self.NAMES)
            if rng.random() < 0.4:
                text += "@" + rng.choice(self.VERSIONS)
        return text

    def mutant(self, i, mutations=2):
        rng = self._rng("mutant", i)
        text = list(self.plausible(i))
        for _ in range(rng.randint(1, mutations)):
            if not text:
                break
            op = rng.random()
            pos = rng.randrange(len(text))
            if op < 0.34:
                text.insert(pos, rng.choice(FUZZ_ALPHABET))
            elif op < 0.67:
                del text[pos]
            else:
                text[pos] = rng.choice(FUZZ_ALPHABET)
        return "".join(text)
