"""Deterministic generative models: package universes, specs, fuzz text.

Everything here is driven by ``random.Random(seed)`` — no ambient
entropy, no ``hash()`` — so a single integer replays a whole campaign
on any machine.  These generators replace the ad-hoc ones that used to
live inside ``tests/spec/test_parser_fuzz.py`` and
``tests/core/test_concretize_properties.py``:

* :class:`RepoGenerator` synthesizes a layered-DAG package repository
  with versions, boolean variants, virtual interfaces with competing
  providers, and conditional (``when=``) dependencies — the full
  directive surface the concretizer has to reason about, in
  random-but-reproducible combinations.
* :class:`SpecGenerator` draws abstract requests over such a repo:
  version ranges, compiler pins, architectures, variant flags, and
  forced ``^provider`` choices — including occasionally-unsatisfiable
  ones, which the oracle and invariant layers expect to fail with
  *typed* errors.
* :class:`SpecTextGenerator` emits parser fuzz inputs: raw alphabet
  soup, token-assembled plausible specs, and mutations of valid
  renderings.
"""

import random

from repro.directives import depends_on, provides, variant, version
from repro.directives.directives import DirectiveMeta
from repro.fetch.mockweb import mock_checksum
from repro.package.package import Package
from repro.repo.repository import Repository
from repro.util.naming import mod_to_class

#: compilers the generated universes assume registered (the Session
#: default toolchain covers all of these)
GEN_COMPILERS = ("gcc@4.9.2", "gcc@4.7.3", "intel@15.0.1", "clang@3.5.0")

#: architectures requests may pin
GEN_ARCHES = ("linux-x86_64", "bgq")

#: variant names the generator draws from
GEN_VARIANT_NAMES = ("shared", "debug", "mpi", "threads")


def _make_package(name, versions, dep_decls, provided=None, variants=()):
    """Build one Package subclass via the real directive machinery.

    ``dep_decls`` is a list of ``(dep_name, constraint_suffix, when)``
    tuples; constraint suffix is appended to the dependency name (e.g.
    ``"@2:"``), ``when`` is a predicate string or None.
    """
    ns = {
        "homepage": "https://mock.example.org/%s" % name,
        "url": "https://mock.example.org/%s/%s-%s.tar.gz" % (name, name, versions[0]),
        "__doc__": "Generated package %s (repro.testing.generators)." % name,
        "build_units": 2,
        "unit_cost": 0.001,
    }
    for v in versions:
        version(v, mock_checksum(name, v))
    for dep_name, suffix, when in dep_decls:
        depends_on(dep_name + suffix, when=when)
    if provided:
        provides(provided)
    for vname in variants:
        variant(vname, default=(vname == "shared"),
                description="generated variant %s" % vname)
    return DirectiveMeta(mod_to_class(name), (Package,), ns)


class RepoGenerator:
    """Synthesizes a deterministic random package repository.

    Structure guarantees (so generated universes are always plannable):

    * package *i* only depends on packages with smaller indices — the
      concrete DAG is acyclic by construction;
    * virtual providers are leaves, so provider substitution can never
      introduce a cycle;
    * every virtual has at least two providers, so the backtracking
      concretizer always has a real choice point to explore.
    """

    def __init__(self, seed, count=40, virtuals=2, namespace="generated"):
        self.seed = int(seed)
        self.count = max(4, int(count))
        self.virtuals = max(0, int(virtuals))
        self.namespace = namespace

    def virtual_name(self, i):
        return "vif-%d" % i

    def package_name(self, i):
        return "gen-%03d" % i

    def build(self):
        """Generate and return the Repository."""
        rng = random.Random(self.seed)
        repo = Repository(namespace=self.namespace)
        names = []

        # virtual interfaces first: 2-3 leaf providers each
        provider_of = {}
        for vi in range(self.virtuals):
            vname = self.virtual_name(vi)
            provider_of[vname] = []
            for pi in range(rng.randint(2, 3)):
                pname = "%s-impl-%d" % (vname, pi)
                versions = self._draw_versions(rng)
                cls = _make_package(pname, versions, [], provided=vname)
                repo.add_class(pname, cls)
                provider_of[vname].append(pname)

        for i in range(self.count):
            name = self.package_name(i)
            versions = self._draw_versions(rng)
            variants = self._draw_variants(rng)
            dep_decls = self._draw_dependencies(rng, names, variants, versions)
            if provider_of and rng.random() < 0.25:
                vname = rng.choice(sorted(provider_of))
                when = self._draw_when(rng, variants, versions)
                dep_decls.append((vname, "", when))
            cls = _make_package(name, versions, dep_decls, variants=variants)
            repo.add_class(name, cls)
            names.append(name)
        return repo

    # -- draws -------------------------------------------------------------
    def _draw_versions(self, rng):
        n = rng.randint(2, 4)
        return ["%d.%d" % (major + 1, rng.randint(0, 9)) for major in range(n)]

    def _draw_variants(self, rng):
        if rng.random() < 0.5:
            return ()
        return tuple(
            rng.sample(GEN_VARIANT_NAMES, rng.randint(1, 2))
        )

    def _draw_when(self, rng, variants, versions):
        """A predicate for a conditional dependency, or None."""
        roll = rng.random()
        if roll < 0.55 or (not variants and roll < 0.8):
            return None
        if variants and roll < 0.8:
            flag = rng.choice(variants)
            return ("+" if rng.random() < 0.7 else "~") + flag
        return "@%s:" % versions[rng.randrange(len(versions))].split(".")[0]

    def _draw_dependencies(self, rng, names, variants, versions):
        if not names:
            return []
        decls = []
        for dep in rng.sample(names, min(len(names), rng.randint(0, 3))):
            suffix = ""
            if rng.random() < 0.2:
                # a version-range constraint on the dependency edge
                suffix = "@%d:" % rng.randint(1, 2)
            decls.append((dep, suffix, self._draw_when(rng, variants, versions)))
        return decls


class SpecGenerator:
    """Draws abstract requests over a repository, deterministically.

    ``specs(n)`` yields ``n`` request strings; ``spec(i)`` regenerates
    request *i* alone (replay of one campaign case without rerunning
    the stream before it).
    """

    def __init__(self, seed, repo, compilers=GEN_COMPILERS, arches=GEN_ARCHES):
        self.seed = int(seed)
        self.repo = repo
        self.compilers = tuple(compilers)
        self.arches = tuple(arches)
        self._names = sorted(repo.all_package_names())

    def spec(self, i):
        """Request *i* of this generator's deterministic stream."""
        from repro.testing import derive_seed

        rng = random.Random(derive_seed(self.seed, "spec", i))
        return self._draw(rng)

    def specs(self, n):
        return [self.spec(i) for i in range(n)]

    def _draw(self, rng):
        name = rng.choice(self._names)
        cls = self.repo.get_class(name)
        parts = [name]

        if rng.random() < 0.4 and cls.versions:
            v = rng.choice(sorted(cls.versions))
            style = rng.random()
            if style < 0.5:
                parts.append("@%s" % v)
            elif style < 0.75:
                parts.append("@%s:" % str(v).split(".")[0])
            else:
                parts.append("@:%s" % v)
        if rng.random() < 0.35:
            compiler = rng.choice(self.compilers)
            if rng.random() < 0.5:
                compiler = compiler.split("@")[0]
            parts.append("%%%s" % compiler)
        if cls.variants and rng.random() < 0.4:
            vname = rng.choice(sorted(cls.variants))
            parts.append(("+" if rng.random() < 0.6 else "~") + vname)
        if rng.random() < 0.25:
            parts.append("=%s" % rng.choice(self.arches))
        if rng.random() < 0.2:
            # force a dependency constraint; may be a provider pin, may
            # be an unrelated package (a typed error both concretizers
            # must agree on)
            parts.append(" ^%s" % rng.choice(self._names))
        return "".join(parts)


#: character soup the parser must survive (superset of spec syntax)
FUZZ_ALPHABET = "abcxyz019._-@:%+~^= "


class SpecTextGenerator:
    """Parser fuzz inputs: soup, assembled tokens, and mutants.

    Three deterministic streams, each addressable by case index so a
    failing case replays in isolation:

    * :meth:`soup` — length-bounded random text over the spec alphabet;
    * :meth:`plausible` — token-assembled spec-shaped strings (names,
      versions, compilers, variants, arch, ``^`` chains) that are
      *usually* valid;
    * :meth:`mutant` — a plausible string with random character edits
      (insert/delete/replace), probing error paths near valid syntax.
    """

    NAMES = ("libelf", "mpileaks", "a", "xy-z0", "pkg_1", "m.p.i")
    VERSIONS = ("1.0", "2", "0.8.11:0.8.13", ":3", "4:", "1.0,2.1")
    COMPILERS = ("gcc", "gcc@4.9", "intel@15.0.1", "clang")
    ARCHES = ("linux-x86_64", "bgq")

    def __init__(self, seed):
        self.seed = int(seed)

    def _rng(self, stream, i):
        from repro.testing import derive_seed

        return random.Random(derive_seed(self.seed, "text", stream, i))

    def soup(self, i, max_len=40):
        rng = self._rng("soup", i)
        return "".join(
            rng.choice(FUZZ_ALPHABET) for _ in range(rng.randint(0, max_len))
        )

    def unicode_soup(self, i, max_len=30):
        rng = self._rng("unicode", i)
        return "".join(
            chr(rng.randint(1, 0x2FFF)) for _ in range(rng.randint(1, max_len))
        )

    def plausible(self, i):
        rng = self._rng("plausible", i)
        parts = [rng.choice(self.NAMES)]
        if rng.random() < 0.5:
            parts.append("@" + rng.choice(self.VERSIONS))
        if rng.random() < 0.4:
            parts.append("%" + rng.choice(self.COMPILERS))
        if rng.random() < 0.4:
            parts.append(rng.choice("+~") + rng.choice(("shared", "debug", "mpi")))
        if rng.random() < 0.3:
            parts.append("=" + rng.choice(self.ARCHES))
        text = "".join(parts)
        for _ in range(rng.randint(0, 2)):
            text += " ^" + rng.choice(self.NAMES)
            if rng.random() < 0.4:
                text += "@" + rng.choice(self.VERSIONS)
        return text

    def mutant(self, i, mutations=2):
        rng = self._rng("mutant", i)
        text = list(self.plausible(i))
        for _ in range(rng.randint(1, mutations)):
            if not text:
                break
            op = rng.random()
            pos = rng.randrange(len(text))
            if op < 0.34:
                text.insert(pos, rng.choice(FUZZ_ALPHABET))
            elif op < 0.67:
                del text[pos]
            else:
                text[pos] = rng.choice(FUZZ_ALPHABET)
        return "".join(text)
