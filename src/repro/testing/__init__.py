"""``repro.testing``: first-class correctness tooling.

The paper's claims — concretization reaches a valid fixed point over a
combinatorial spec space, installs are reproducible — are *testable
properties*, not aspirations.  This subsystem hunts for violations
mechanically, both from pytest and from the ``repro-spack selftest``
CLI:

* :mod:`~repro.testing.faults` — a seeded :class:`FaultPlan` armed on a
  session's :class:`FaultInjector` makes the fetcher, executor,
  database, and lock layers fail at chosen points (transient and
  permanent fetch errors, crash-mid-build kills, database write races,
  lock timeouts), so retry/backoff, failure propagation, stale-snapshot
  merges, and orphan-prefix healing are exercised deterministically.
* :mod:`~repro.testing.generators` — deterministic
  :class:`RepoGenerator` / :class:`SpecGenerator` /
  :class:`SpecTextGenerator` synthesize random-but-reproducible package
  universes, abstract specs over them, and parser fuzz inputs.  Every
  RNG derives from one session seed (:func:`session_seed`), so any
  failure is replayable.
* :mod:`~repro.testing.invariants` — concretizer postcondition checks
  (fully concrete, constraints satisfied, idempotent, parse/print and
  dict round-trips, stable DAG hash).
* :mod:`~repro.testing.oracle` — a differential oracle comparing the
  greedy concretizer against the backtracking one on every generated
  case, with a spec minimizer for divergences.
* :mod:`~repro.testing.campaign` — the seeded campaign runner behind
  ``repro-spack selftest``, reporting as JSONL.
"""

import hashlib
import os

#: default session seed for deterministic test campaigns; override with
#: $REPRO_TEST_SEED to replay a failure seen elsewhere
DEFAULT_SESSION_SEED = 20260806


def session_seed():
    """The session-wide master seed every test RNG derives from."""
    return int(os.environ.get("REPRO_TEST_SEED", DEFAULT_SESSION_SEED))


def derive_seed(master, *names):
    """A stable sub-seed for a named purpose.

    ``derive_seed(seed, "parser-fuzz", 17)`` is the same integer on
    every machine and Python version (sha256, not ``hash()``), so a
    single printed master seed replays any derived stream.
    """
    text = "%d:%s" % (int(master), ":".join(str(n) for n in names))
    return int.from_bytes(hashlib.sha256(text.encode()).digest()[:8], "big")


from repro.testing.faults import (  # noqa: E402
    ALL_FAULT_POINTS,
    DB_WRITE_RACE,
    EXECUTOR_CRASH,
    FETCH_PERMANENT,
    FETCH_TRANSIENT,
    LOCK_TIMEOUT,
    Fault,
    FaultInjector,
    FaultPlan,
    SimulatedKill,
)
from repro.testing.generators import (  # noqa: E402
    RepoGenerator,
    SpecGenerator,
    SpecTextGenerator,
)
from repro.testing.invariants import (  # noqa: E402
    InvariantViolation,
    assert_invariants,
    check_concretization,
    check_determinism,
    check_idempotence,
    check_roundtrip,
)
from repro.testing.oracle import Comparison, DifferentialOracle  # noqa: E402
from repro.testing.campaign import (  # noqa: E402
    CampaignConfig,
    CampaignReport,
    run_campaign,
)

__all__ = [
    "ALL_FAULT_POINTS",
    "DB_WRITE_RACE",
    "EXECUTOR_CRASH",
    "FETCH_PERMANENT",
    "FETCH_TRANSIENT",
    "LOCK_TIMEOUT",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "SimulatedKill",
    "RepoGenerator",
    "SpecGenerator",
    "SpecTextGenerator",
    "InvariantViolation",
    "assert_invariants",
    "check_concretization",
    "check_determinism",
    "check_idempotence",
    "check_roundtrip",
    "Comparison",
    "DifferentialOracle",
    "CampaignConfig",
    "CampaignReport",
    "run_campaign",
    "DEFAULT_SESSION_SEED",
    "session_seed",
    "derive_seed",
]
