"""Simulated filesystem cost models and the virtual build clock.

Substitution documented in DESIGN.md §3: the paper's Figures 10–11 time
real builds on NFS vs a node-local temp filesystem, with and without
compiler wrappers.  We have neither NFS nor hours of compilation, so the
build substrate *counts* its work — compiler invocations, file
operations, compile units — and a :class:`CostModel` converts the counts
into virtual seconds: per-operation filesystem latency (NFS ≫ tmpfs) plus
per-unit compile cost plus per-invocation wrapper overhead.  The shape of
the paper's results (wrapper overhead inversely proportional to compile
time per invocation; NFS uniformly inflating I/O-heavy phases) is a
property of this accounting, not of magic constants.
"""

from repro.simfs.model import (
    NFS,
    TMPFS,
    CostModel,
    FSProfile,
    VirtualClock,
    measure_wrapper_overhead,
)

__all__ = [
    "FSProfile",
    "CostModel",
    "VirtualClock",
    "NFS",
    "TMPFS",
    "measure_wrapper_overhead",
]
