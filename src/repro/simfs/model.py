"""Cost-model types for the simulated build-time experiments."""

import time


class FSProfile:
    """Per-operation latency profile of a filesystem.

    ``per_op_seconds`` charges every metadata or small-I/O operation
    (stat, open, small read/write).  The NFS profile reflects a remotely
    mounted home directory (the paper: "building this way can be as much
    as 62.7% slower"); the temp profile a node-local scratch filesystem.
    """

    def __init__(self, name, per_op_seconds):
        self.name = name
        self.per_op_seconds = float(per_op_seconds)

    def __repr__(self):
        return "FSProfile(%r, %gs/op)" % (self.name, self.per_op_seconds)


#: Remote NFS-like home directory: a few ms per round trip.
NFS = FSProfile("nfs", 0.004)

#: Node-local temporary filesystem.
TMPFS = FSProfile("tmp", 0.00008)


class VirtualClock:
    """Accumulates virtual seconds plus an audit trail of counts."""

    def __init__(self):
        self.seconds = 0.0
        self.counts = {}

    def charge(self, category, seconds, count=1):
        self.seconds += seconds
        self.counts[category] = self.counts.get(category, 0) + count

    def snapshot(self):
        return dict(self.counts, seconds=self.seconds)

    def reset(self):
        self.seconds = 0.0
        self.counts = {}


class CostModel:
    """Converts build-substrate work items into virtual seconds.

    Parameters
    ----------
    fs : FSProfile
        Where the *stage* (build tree) lives.
    wrapper_overhead_s : float
        Extra cost per compiler invocation when wrappers are enabled:
        process spawn + argv parsing + indirection (§3.5.3).  Calibrate
        with :func:`measure_wrapper_overhead` for an honest local value.
    install_fs : FSProfile
        Where the install prefix lives (always local in the paper's
        setup; defaults to the stage profile).
    """

    def __init__(self, fs=TMPFS, wrapper_overhead_s=0.010, install_fs=None):
        self.fs = fs
        self.wrapper_overhead_s = float(wrapper_overhead_s)
        self.install_fs = install_fs or fs

    def charge_file_ops(self, clock, n, install=False):
        profile = self.install_fs if install else self.fs
        clock.charge("file_ops", profile.per_op_seconds * n, count=n)

    def charge_compile(self, clock, unit_cost_s, wrapped):
        clock.charge("compile_units", unit_cost_s)
        if wrapped:
            clock.charge("wrapper_invocations", self.wrapper_overhead_s)

    def charge_link(self, clock, cost_s, wrapped):
        clock.charge("links", cost_s)
        if wrapped:
            clock.charge("wrapper_invocations", self.wrapper_overhead_s)


def measure_wrapper_overhead(wrapper_callable, argv, env, trials=20):
    """Measure the real cost of one wrapper pass (argv rewrite).

    Used by the Figure 10/11 harness to calibrate
    ``wrapper_overhead_s`` from this machine rather than a constant:
    we time the actual argument-injection code path.
    """
    start = time.perf_counter()
    for _ in range(trials):
        wrapper_callable(list(argv), dict(env))
    elapsed = time.perf_counter() - start
    return elapsed / trials
