"""``repro-spack``: the command-line interface.

Mirrors the original tool's commands around this reproduction's Session:

  install, uninstall, find, spec, explain, providers, versions,
  compilers, graph, module, view, activate, deactivate, extensions,
  repo-list

The session root comes from ``--root`` or ``$REPRO_SPACK_ROOT`` (default
``~/.repro-spack``); the first command against a root generates the fake
toolchain, seeds the mock web, and loads the built-in corpus.
"""

import argparse
import os
import sys

from repro.errors import ReproError


#: (hub, sink) pairs attached for this invocation; main() closes them
_ACTIVE_LOG_SINKS = []


def _session(args):
    from repro.session import Session

    root = args.root or os.environ.get(
        "REPRO_SPACK_ROOT", os.path.expanduser("~/.repro-spack")
    )
    session = Session.create(root)
    log_path = getattr(args, "telemetry_log", None)
    if log_path:
        from repro.telemetry import JSONLSink

        try:
            sink = JSONLSink(log_path)
        except OSError as e:
            raise ReproError(
                "Cannot open telemetry log %s: %s" % (log_path, e)
            ) from e
        session.telemetry.add_sink(sink)
        _ACTIVE_LOG_SINKS.append((session.telemetry, sink))
    return session


def _spec_arg(args):
    return " ".join(args.spec)


# -- commands ---------------------------------------------------------------

def cmd_install(args):
    session = _session(args)
    use_cache = getattr(args, "use_cache", None)
    if use_cache and session.buildcache is None:
        # opt-in with no configured cache: enable the default one and
        # publish what we build, so the next install can pull it
        session.enable_buildcache(push=True)
    request = _spec_arg(args)
    concretizer = getattr(args, "concretizer", None)
    if concretizer is not None:
        # pre-concretize with the chosen variant; install() skips
        # concretization for an already-concrete spec
        request = session.concretize(request, concretizer=concretizer)
    spec, result = session.install(
        request,
        jobs=getattr(args, "jobs", None),
        fail_fast=getattr(args, "fail_fast", False),
        use_cache=use_cache,
        use_splice=getattr(args, "use_splice", None),
    )
    print("==> %s" % spec)
    for stats in result.built:
        print(
        "    built  %-20s %8.2fs (model)" % (stats.spec.name, stats.virtual_seconds)
        )
    for stats in result.cached:
        print("    cached %-20s (extracted + relocated)" % stats.spec.name)
    for stats in result.spliced:
        print("    spliced %-19s (runtime-hash twin rebased)" % stats.spec.name)
    for node in result.reused:
        print("    reused %s" % node.name)
    for node in result.externals:
        print("    external %s (%s)" % (node.name, node.external))
    print("==> installed to %s" % session.store.layout.path_for_spec(spec))
    if getattr(args, "timers", False):
        _print_timers(result)
    return 0


def _print_timers(result):
    """The ``install --timers`` per-phase report (data from the same
    measurements persisted in each prefix's timing.json)."""
    if not result.built:
        print("==> timers: nothing was built (everything reused or external)")
        return
    phase_names = ("fetch", "stage", "build", "install")
    print("==> phase timers (wall seconds)")
    print("    %-20s %8s %8s %8s %8s %8s"
          % (("package",) + phase_names + ("total",)))
    totals = dict.fromkeys(phase_names, 0.0)
    aggregate = 0.0
    for stats in result.built:
        row = [stats.phases.get(p, 0.0) for p in phase_names]
        for name, value in zip(phase_names, row):
            totals[name] += value
        aggregate += stats.real_seconds
        print("    %-20s %8.3f %8.3f %8.3f %8.3f %8.3f"
              % ((stats.spec.name,) + tuple(row) + (stats.real_seconds,)))
    print("    %-20s %8.3f %8.3f %8.3f %8.3f"
          % (("(sum)",) + tuple(totals[p] for p in phase_names)))
    # DAG-parallel overlap: wall-clock of the scheduler drive vs. the
    # sum of per-node build times (equal at -j1, smaller at -j N).
    print("==> wall-clock %.3fs with %d job%s (aggregate node time %.3fs)"
          % (result.wall_seconds, result.jobs,
             "s" if result.jobs != 1 else "", aggregate))


def cmd_uninstall(args):
    session = _session(args)
    record = session.uninstall(_spec_arg(args), force=args.force)
    print("==> uninstalled %s" % record.spec)
    return 0


def cmd_find(args):
    session = _session(args)
    query = _spec_arg(args)
    if query.startswith("/"):
        specs = [r.spec for r in session.db.get_by_hash(query[1:])]
    else:
        specs = session.find(query or None)
    if not specs:
        print("==> no installed packages match")
        return 0
    print("==> %d installed packages" % len(specs))
    for spec in specs:
        if getattr(args, "deps", False):
            print("    %s  /%s" % (spec.node_str(), spec.dag_hash(8)))
            for d, node in spec.traverse(depth=True, root=False):
                print("    %s%s" % ("    " * d, node.node_str()))
        else:
            print("    %s  /%s" % (spec, spec.dag_hash(8)))
    return 0


def cmd_location(args):
    session = _session(args)
    query = _spec_arg(args)
    if query.startswith("/"):
        records = session.db.get_by_hash(query[1:])
    else:
        records = session.db.query(query)
    if len(records) != 1:
        print("Error: %d installed specs match %r" % (len(records), query),
              file=sys.stderr)
        return 1
    print(records[0].prefix)
    return 0


def cmd_spec(args):
    session = _session(args)
    from repro.spec.spec import Spec

    abstract = Spec(_spec_arg(args))
    # argparse default is True; --no-concretize-cache stores False
    use_cache = False if getattr(args, "concretize_cache", True) is False else None
    print("Input spec")
    print("------------------------------")
    print(abstract.tree())
    if getattr(args, "trace", False):
        # Stream Figure 6 pipeline stages live through the telemetry hub:
        # the same records a --telemetry-log JSONL capture would carry.
        from repro.telemetry import Sink

        class _TraceSink(Sink):
            PREFIX = "concretize."

            def emit(self, record):
                if record["event"] != "event":
                    return
                name = record["name"]
                if not name.startswith(self.PREFIX):
                    return
                detail = ", ".join(
                    "%s=%s" % kv for kv in sorted(record["attrs"].items())
                )
                print("  [%s] %s" % (name[len(self.PREFIX):], detail))

        print("Trace")
        print("------------------------------")
        sink = session.telemetry.add_sink(_TraceSink())
        try:
            concrete = session.concretize(
                abstract, use_cache=use_cache,
                concretizer=getattr(args, "concretizer", None),
            )
        finally:
            session.telemetry.remove_sink(sink)
    else:
        concrete = session.concretize(
            abstract, backtrack=getattr(args, "backtrack", False),
            use_cache=use_cache,
            concretizer=getattr(args, "concretizer", None),
        )
    print("Concretized")
    print("------------------------------")
    print(concrete.tree())
    return 0


def cmd_info(args):
    session = _session(args)
    name = _spec_arg(args)
    cls = session.repo.get_class(name)
    print("Package:   %s" % name)
    print("Homepage:  %s" % (cls.homepage or "(none)"))
    print("URL:       %s" % (cls.url or "(none)"))
    if cls.__doc__:
        print("Description:")
        print("    %s" % cls.__doc__.strip().splitlines()[0])
    print("Safe versions:")
    for v in cls.safe_versions():
        print("    %s" % v)
    if cls.variants:
        print("Variants:")
        for vname, variant in sorted(cls.variants.items()):
            print("    %-12s [default: %s]  %s"
                  % (vname, variant.default, variant.description))
    if cls.dependencies:
        print("Dependencies:")
        for dep_name, constraints in sorted(cls.dependencies.items()):
            for dc in constraints:
                when = "  when %s" % dc.when if dc.when else ""
                print("    %s%s" % (dc.spec, when))
    if cls.provided:
        print("Provides:")
        for interface in cls.provided:
            when = "  when %s" % interface.when if interface.when else ""
            print("    %s%s" % (interface.spec, when))
    if cls.compiler_requirements:
        print("Compiler requirements:")
        for feature, when in cls.compiler_requirements:
            suffix = "  when %s" % when if when else ""
            print("    %s%s" % (feature, suffix))
    return 0


def cmd_checksum(args):
    session = _session(args)
    import hashlib

    name = _spec_arg(args)
    cls = session.repo.get_class(name)
    pkg = cls(session.spec(name), session=session)
    versions = session.fetcher.available_versions(pkg)
    print("==> found %d versions of %s" % (len(versions), name))
    for v in versions:
        try:
            url = pkg.url_for_version(v)
            content = session.web.get(url)
            digest = hashlib.md5(content).hexdigest()
            print("    version(%r, %r)" % (str(v), digest))
        except Exception as e:
            print("    # %s: %s" % (v, e))
    return 0


def cmd_mirror(args):
    session = _session(args)
    from repro.fetch.mirror import Mirror, create_mirror
    from repro.spec.spec import Spec

    mirror = Mirror(args.dir or os.path.join(session.root, "mirror"))
    if args.create:
        specs = [Spec(s) for s in args.spec] or []
        if not specs:
            print("Error: mirror --create needs at least one spec", file=sys.stderr)
            return 1
        written = create_mirror(session, mirror, specs)
        print("==> mirrored %d archives into %s" % (len(written), mirror.root))
        for name, version in written:
            print("    %s@%s" % (name, version))
        return 0
    contents = mirror.contents()
    print("==> mirror at %s: %d packages" % (mirror.root, len(contents)))
    for name, versions in contents.items():
        print("    %-16s %s" % (name, ", ".join(versions)))
    return 0


def cmd_buildcache(args):
    """``buildcache push|pull|list``: the relocatable binary cache."""
    session = _session(args)
    from repro.store.buildcache import BuildCache

    if args.dir:
        cache = BuildCache(
            args.dir, telemetry=session.telemetry, faults=session.faults
        )
        session.buildcache = cache
    elif session.buildcache is not None:
        cache = session.buildcache
    else:
        cache = session.enable_buildcache()

    if args.action == "list":
        entries = cache.entries()
        print("==> build cache at %s: %d entries" % (cache.root, len(entries)))
        for dag_hash, entry in entries:
            print(
                "    %s@%s /%s  sha256:%s"
                % (entry["name"], entry["version"], dag_hash[:8],
                   entry["digest"][:12])
            )
        return 0

    if not args.spec:
        print("Error: buildcache %s needs a spec" % args.action, file=sys.stderr)
        return 1

    if args.action == "push":
        records = session.db.query(_spec_arg(args))
        if not records:
            print("Error: no installed specs match %r" % _spec_arg(args),
                  file=sys.stderr)
            return 1
        pushed = []
        seen = set()
        for record in records:
            for node in record.spec.traverse():
                key = node.dag_hash()
                if node.external or key in seen or not session.db.installed(node):
                    continue
                seen.add(key)
                prefix = session.store.layout.path_for_spec(node)
                cache.push(node, prefix, session.root)
                pushed.append(node.name)
        print("==> pushed %d prefixes to %s" % (len(pushed), cache.root))
        for name in pushed:
            print("    %s" % name)
        return 0

    # pull: install from the cache (misses fall back to source builds)
    spec, result = session.install(_spec_arg(args), use_cache=True)
    print(
        "==> %s: %d from cache, %d built, %d reused, %d external"
        % (spec.name, len(result.cached), len(result.built),
           len(result.reused), len(result.externals))
    )
    return 0


def cmd_lmod(args):
    session = _session(args)
    from repro.modules.lmod import LmodHierarchy

    hierarchy = LmodHierarchy(session)
    written = hierarchy.refresh()
    print("==> regenerated %d Lmod hierarchy files under %s"
          % (len(written), hierarchy.root))
    for rel in hierarchy.tree():
        print("    %s" % rel)
    return 0


def cmd_explain(args):
    from repro.spec.explain import explain

    print(explain(_spec_arg(args)))
    return 0


def cmd_providers(args):
    session = _session(args)
    virtual = _spec_arg(args)
    if not virtual:
        names = session.provider_index.virtual_names()
        print("==> %d virtual interfaces" % len(names))
        for name in names:
            provider_names = session.provider_index.providers_for_name(name)
            print("    %-10s %s" % (name, ", ".join(provider_names)))
        return 0
    providers = session.provider_index.providers_for(virtual)
    print("==> providers of %s" % virtual)
    for provider in providers:
        print("    %s" % provider)
    return 0


def cmd_versions(args):
    session = _session(args)
    name = _spec_arg(args)
    cls = session.repo.get_class(name)
    pkg = cls(session.spec(name), session=session)
    print("==> declared (safe) versions of %s" % name)
    for v in cls.known_versions():
        checksum = cls.versions[v].get("checksum")
        print("    %-12s %s" % (v, checksum or "(no checksum)"))
    remote = session.fetcher.available_versions(pkg)
    if remote:
        print("==> remote versions (scraped)")
        for v in remote:
            print("    %s" % v)
    return 0


def cmd_compilers(args):
    session = _session(args)
    print("==> available compilers")
    for compiler in session.compilers:
        print("    %-16s cc=%s" % (compiler, compiler.cc))
    return 0


def cmd_graph(args):
    session = _session(args)
    concrete = session.concretize(_spec_arg(args))
    deptype = getattr(args, "deptype", None)
    if deptype:
        deptype = tuple(t.strip() for t in deptype.split(",") if t.strip())
    else:
        deptype = None
    if args.dot:
        from repro.spec.graph import graph_dot

        print(graph_dot(concrete, name=concrete.name,
                        show_deptypes=True, deptype=deptype))
    else:
        from repro.spec.graph import graph_ascii

        print(graph_ascii(concrete, show_deptypes=True, deptype=deptype))
    return 0


def cmd_module(args):
    session = _session(args)
    from repro.modules.generator import ModuleGenerator

    generator = ModuleGenerator(session)
    paths = generator.refresh()
    print("==> regenerated %d module files under %s" % (len(paths), generator.module_root))
    return 0


def cmd_view(args):
    session = _session(args)
    from repro.views.view import View, ViewRule

    view = View(session, args.view_root or os.path.join(session.root, "view"))
    if args.link:
        view.add_rule(ViewRule(args.link, match=_spec_arg(args)))
    links = view.refresh()
    print("==> view at %s (%d links)" % (view.root, len(links)))
    for link, spec in sorted(links.items()):
        print("    %s -> %s" % (os.path.relpath(link, view.root), spec))
    return 0


def cmd_activate(args):
    session = _session(args)
    from repro.extensions.manager import ExtensionManager

    extendee = ExtensionManager(session).activate(_spec_arg(args))
    print("==> activated %s in %s" % (_spec_arg(args), extendee))
    return 0


def cmd_deactivate(args):
    session = _session(args)
    from repro.extensions.manager import ExtensionManager

    extendee = ExtensionManager(session).deactivate(_spec_arg(args))
    print("==> deactivated %s from %s" % (_spec_arg(args), extendee))
    return 0


def cmd_extensions(args):
    session = _session(args)
    from repro.extensions.manager import ExtensionManager

    installed, active = ExtensionManager(session).extensions_of(_spec_arg(args))
    print("==> %d installed extensions" % len(installed))
    for spec in installed:
        marker = "*" if spec.name in active else " "
        print("  %s %s" % (marker, spec))
    return 0


def cmd_verify(args):
    session = _session(args)
    from repro.store.verify import verify_store

    issues = verify_store(session)
    if not issues:
        print("==> %d installed specs verified, no issues" % len(session.db))
        return 0
    print("==> %d issues found:" % len(issues))
    for issue in issues:
        print("    %s" % issue)
    return 1


def cmd_reindex(args):
    session = _session(args)
    session.db._records = {}
    found = session.db.rebuild_from_prefixes()
    print("==> reindexed %d installed specs from provenance files" % found)
    return 0


def cmd_fetch(args):
    session = _session(args)
    fetched = session.fetch_only(_spec_arg(args))
    print("==> fetched %d archives" % len(fetched))
    for name, version in fetched:
        print("    %s@%s" % (name, version))
    return 0


def cmd_stage(args):
    session = _session(args)
    path = session.stage_only(_spec_arg(args))
    print("==> staged in %s" % path)
    return 0


def cmd_clean(args):
    session = _session(args)
    removed = session.clean_stages()
    print("==> removed %d stages" % len(removed))
    return 0


def cmd_create(args):
    session = _session(args)
    from repro.repo.create import create_package_skeleton

    repo_root = args.repo_dir or os.path.join(session.root, "local-repo")
    url = _spec_arg(args)
    name, path, versions = create_package_skeleton(session, url, repo_root)
    print("==> created package %r with %d versions" % (name, len(versions)))
    print("    %s" % path)
    return 0


def cmd_dependents(args):
    session = _session(args)
    name = _spec_arg(args)
    cls = session.repo.get_class(name)
    provided = {p.spec.name for p in cls.provided}
    declared = []
    for other in session.repo.all_package_names():
        other_cls = session.repo.get_class(other)
        dep_names = set(other_cls.dependencies)
        if name in dep_names or (provided & dep_names):
            declared.append(other)
    print("==> %d packages can depend on %s" % (len(declared), name))
    for other in declared:
        print("    %s" % other)
    installed = session.db.query()
    direct = [
        r.spec for r in installed
        if any(d.name == name for d in r.spec.dependencies.values())
    ]
    if direct:
        print("==> installed dependents:")
        for spec in direct:
            print("    %s" % spec.node_str())
    return 0


def cmd_selftest(args):
    """Run a seeded correctness campaign (oracle sweep + fault sweep).

    Fully deterministic: two runs with the same seed produce identical
    JSONL reports, so a failing campaign is replayable from one integer.
    """
    import shutil
    import tempfile

    from repro.testing.campaign import CampaignConfig, run_campaign

    config = CampaignConfig(
        seed=args.seed,
        specs=args.specs,
        fault_plans=args.fault_plans,
        cache_specs=getattr(args, "cache_specs", 200),
        splice_cases=getattr(args, "splice_cases", 6),
        solver_cases=getattr(args, "solver_cases", 200),
        env_cases=getattr(args, "env_cases", 25),
    )
    workdir = tempfile.mkdtemp(prefix="repro-selftest-")
    try:
        report = run_campaign(config, workdir, log=lambda m: print("==> %s" % m))
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    if args.report:
        report.write(args.report)
        print("==> report written to %s" % args.report)
    summary = report.summary()
    print("==> selftest seed %d" % config.seed)
    print("    oracle: %s" % (summary["oracle_outcomes"] or "skipped"))
    print("    injections: %s" % (summary["injections"] or "skipped"))
    print("    cache: %s" % (summary["cache_outcomes"] or "skipped"))
    print("    splice: %s" % (
        "%d cases, %d divergences" % (summary["splice_cases"],
                                      summary["splice_divergences"])
        if summary["splice_cases"] else "skipped"
    ))
    print("    solver: %s" % (
        "%s, %d rescues, %d divergences" % (
            summary["solver_outcomes"], summary["solver_rescues"],
            summary["solver_divergences"])
        if summary["solver_cases"] else "skipped"
    ))
    print("    env: %s" % (
        "%s, %d divergences" % (summary["env_outcomes"],
                                summary["env_divergences"])
        if summary["env_cases"] else "skipped"
    ))
    for case in report.divergences():
        print("    DIVERGENCE: %s (minimized: %s)"
              % (case["request"], case["minimized"]))
    for case in report.violations():
        print("    VIOLATION: %s: %s"
              % (case["request"], "; ".join(case["violations"])))
    for case in report.unrecovered():
        print("    UNRECOVERED: plan %d (%s)"
              % (case["case"], case["recovery_error"]))
    for case in report.cache_divergences():
        print("    CACHE DIVERGENCE: %s (%s)"
              % (case["request"], case["variant"]))
    for case in report.splice_divergences():
        print("    SPLICE DIVERGENCE: case %d (%s)"
              % (case["case"],
                 "; ".join(case.get("divergence") or []) or case["error"]))
    for case in report.solver_divergences():
        print("    SOLVER DIVERGENCE: %s (%s)"
              % (case["request"], case["kind"]))
    for case in report.env_divergences():
        print("    ENV DIVERGENCE: case %d (%s)"
              % (case["case"], "; ".join(case.get("issues") or [])))
    if report.ok:
        fault_note = (
            "all fault points reached, all stores healed"
            if config.fault_plans else "fault sweep skipped"
        )
        print("==> OK: no divergences, no violations, " + fault_note)
        return 0
    print("==> FAILED (replay with: repro-spack selftest --seed %d)"
          % config.seed, file=sys.stderr)
    return 1


def cmd_diag(args):
    """``diag trace|critical-path|metrics|compare``: the performance
    observatory over captured telemetry (``--telemetry-log`` JSONL files
    and ``repro-bench/v1`` result files)."""
    from repro.telemetry.analysis import TraceAnalysis

    if args.action == "compare":
        from repro.telemetry.compare import (
            compare_reports, format_comparison, load_report,
        )

        if len(args.files) != 2:
            print("Error: diag compare needs exactly two result files "
                  "(baseline, current)", file=sys.stderr)
            return 1
        report = compare_reports(
            load_report(args.files[0]),
            load_report(args.files[1]),
            tolerance=args.tolerance,
        )
        print(format_comparison(report, verbose=args.verbose), end="")
        return 0 if report["ok"] else 1

    if len(args.files) != 1:
        print("Error: diag %s needs exactly one telemetry JSONL file"
              % args.action, file=sys.stderr)
        return 1
    analysis = TraceAnalysis.from_jsonl(args.files[0])

    if args.action == "trace":
        traces = analysis.traces()
        print("==> %d records, %d spans, %d traces, %d orphans"
              % (len(analysis.records), len(analysis.spans), len(traces),
                 len(analysis.orphans)))
        path = analysis.render_tree(
            sys.stdout, min_duration_s=args.min_ms / 1000.0
        )
        if path:
            print("==> critical path (*): %d spans, %.3fs"
                  % (len(path), analysis.critical_path_seconds(path=path)))
        return 0

    if args.action == "critical-path":
        path = analysis.critical_path()
        if not path:
            print("==> no finished root span in the log")
            return 1
        print("==> critical path of %s (%.3fs wall)"
              % (path[0].label(), path[0].duration_s))
        print("    %-44s %12s" % ("span", "self (ms)"))
        on_path = {s.span_id for s in path}
        for span in path:
            covered = sum(
                c.duration_s for c in span.children
                if c.span_id in on_path and c.duration_s is not None
            )
            self_ms = max(0.0, (span.duration_s or 0.0) - covered) * 1000.0
            print("    %-44s %12.1f" % (span.label(), self_ms))
        print("==> critical-path time: %.3fs"
              % analysis.critical_path_seconds(path=path))
        return 0

    # metrics: aggregate view (plus optional Prometheus rendering)
    snapshot = analysis.summary or {"counters": {}, "gauges": {},
                                    "histograms": {}}
    if args.prometheus:
        from repro.telemetry.metrics import prometheus_text

        print(prometheus_text(snapshot), end="")
        return 0
    print("==> counters")
    for name in sorted(snapshot.get("counters", {})):
        print("    %-40s %d" % (name, snapshot["counters"][name]))
    print("==> histograms (seconds)")
    for name in sorted(snapshot.get("histograms", {})):
        h = snapshot["histograms"][name]
        print("    %-40s n=%-5d mean=%.4f p50=%s p95=%s p99=%s"
              % (name, h.get("count", 0), h.get("mean", 0.0),
                 _ms(h.get("p50")), _ms(h.get("p95")), _ms(h.get("p99"))))
    rollup = analysis.self_time_rollup()
    if rollup:
        print("==> self-time rollup (seconds)")
        print("    %-40s %6s %10s %10s" % ("span", "count", "total", "self"))
        ordering = sorted(rollup.items(), key=lambda kv: -kv[1]["self_s"])
        for name, row in ordering:
            print("    %-40s %6d %10.4f %10.4f"
                  % (name, row["count"], row["total_s"], row["self_s"]))
    conc = analysis.concurrency()
    if conc["spans"]:
        print("==> concurrency: max=%d avg=%.2f utilization=%.0f%% "
              "(%d node spans over %.3fs)"
              % (conc["max_concurrency"], conc["avg_concurrency"],
                 conc["utilization"] * 100.0, conc["spans"],
                 conc["window_seconds"]))
    caches = analysis.cache_effectiveness()
    bc, cc = caches["buildcache"], caches["concretize_cache"]
    if bc["hits"] or bc["misses"] or bc["nodes_from_cache"]:
        saved = ("%.3fs saved" % bc["time_saved_s"]
                 if bc["time_saved_s"] is not None else "n/a saved")
        ratio = ("%.0f%%" % (bc["hit_ratio"] * 100.0)
                 if bc["hit_ratio"] is not None else "n/a")
        print("==> buildcache: %d hits / %d misses (%s), %s"
              % (bc["hits"], bc["misses"], ratio, saved))
    if cc["hits"] or cc["misses"]:
        saved = ("~%.3fs saved" % cc["time_saved_s"]
                 if cc["time_saved_s"] is not None else "n/a saved")
        ratio = ("%.0f%%" % (cc["hit_ratio"] * 100.0)
                 if cc["hit_ratio"] is not None else "n/a")
        print("==> concretize cache: %d hits / %d misses (%s), %s"
              % (cc["hits"], cc["misses"], ratio, saved))
    return 0


def _ms(value):
    return "%.4f" % value if value is not None else "-"


def cmd_serve(args):
    """Run the resident service daemon (docs/service.md)."""
    from repro.service import (
        ENDPOINTS,
        ServiceDaemon,
        SocketTransport,
        StdioTransport,
    )

    session = _session(args)
    daemon = ServiceDaemon(session, workers=args.workers)
    if args.stdio:
        # stdio mode: keep stdout clean for the JSON-lines protocol
        print("==> repro-spack service on stdio (%d workers)"
              % daemon.workers, file=sys.stderr)
        StdioTransport(daemon).serve_until_shutdown()
        return 0
    server = SocketTransport(daemon, host=args.host, port=args.port)
    host, port = server.address
    print("==> repro-spack service listening on %s:%d (%d workers)"
          % (host, port, daemon.workers))
    print("==> endpoints: %s" % ", ".join(ENDPOINTS))
    try:
        server.serve_until_shutdown()
    except KeyboardInterrupt:
        server.server_close()
        daemon.close()
    print("==> service stopped after %d requests" % daemon._served)
    return 0


def cmd_client(args):
    """One request against a running service daemon."""
    import json as _json

    from repro.service import ServiceClient

    argument = " ".join(args.spec)
    endpoint = args.endpoint
    params = {}
    if endpoint in ("spack_spec", "spack_install"):
        params["spec"] = argument
        if getattr(args, "concretizer", None):
            params["concretizer"] = args.concretizer
    elif endpoint == "spack_info":
        params["package"] = argument
    elif endpoint == "spack_env":
        params["roots"] = list(args.spec)
        if getattr(args, "concretizer", None):
            params["concretizer"] = args.concretizer
    elif endpoint in ("spack_list", "spack_find") and argument:
        params["query"] = argument
    with ServiceClient(args.host, args.port) as client:
        result = client.call(endpoint, **params)
    print(_json.dumps(result, indent=2, sort_keys=True))
    return 0


def cmd_env(args):
    """``env list|add|remove|concretize|status|install``: many abstract
    roots managed — and concretized — as one unit (docs/environments.md)."""
    session = _session(args)
    if args.action == "list":
        names = session.environment_names()
        print("==> %d environment%s" % (len(names), "s" if len(names) != 1 else ""))
        for name in names:
            env = session.environment(name)
            print("    %-20s %d root%s, lock %s"
                  % (name, len(env.roots),
                     "s" if len(env.roots) != 1 else "",
                     env.lock_state(session)))
        return 0
    if not args.name:
        print("Error: env %s needs an environment name" % args.action,
              file=sys.stderr)
        return 1
    env = session.environment(args.name)

    if args.action in ("add", "remove"):
        if not args.specs:
            print("Error: env %s needs at least one spec" % args.action,
                  file=sys.stderr)
            return 1
        for text in args.specs:
            if args.action == "add":
                changed = env.add(text)
                print("==> %s %s" % ("added" if changed else "already present", text))
            else:
                changed = env.remove(text)
                print("==> %s %s" % ("removed" if changed else "not found", text))
        print("==> %s: %d root%s" % (env.name, len(env.roots),
                                     "s" if len(env.roots) != 1 else ""))
        return 0

    if args.action == "status":
        report = env.status(session)
        print("==> environment %s (%s)" % (report["name"], report["path"]))
        print("    lock: %s" % report["lock"])
        for root in report["roots"]:
            h = report.get("root_hashes", {}).get(root)
            print("    root %s%s" % (root, "  [%s]" % h[:8] if h else ""))
        if "unique_nodes" in report:
            print("    unified: %d unique node%s, %d installed"
                  % (report["unique_nodes"],
                     "s" if report["unique_nodes"] != 1 else "",
                     report["installed"]))
        return 0

    if args.action == "concretize":
        unified = env.concretize(
            session, jobs=args.jobs, concretizer=args.concretizer,
            force=args.force,
        )
        stats = unified.stats()
        warm = stats["resolves"] == 0
        print("==> %s: %d root%s unified%s"
              % (env.name, stats["roots"],
                 "s" if stats["roots"] != 1 else "",
                 " (restored from lock)" if warm else
                 " in %d round%s (%d solves, %d pin%s)"
                 % (stats["rounds"], "s" if stats["rounds"] != 1 else "",
                    stats["resolves"], stats["pins"],
                    "s" if stats["pins"] != 1 else "")))
        print("==> %d unique nodes, %d shared across roots"
              % (stats["unique_nodes"], stats["shared_packages"]))
        for text, concrete in unified.roots:
            print("    %s  %s" % (concrete.dag_hash()[:8], text))
        for package, pin in sorted(unified.pins.items()):
            print("    pinned %s -> %s" % (package, pin))
        return 0

    if args.action == "install":
        unified, results = env.install(session, jobs=args.jobs)
        print("==> %s: installed %d root%s (%d unique nodes)"
              % (env.name, len(results),
                 "s" if len(results) != 1 else "",
                 len(unified.nodes())))
        for text, concrete, result in results:
            built = len(result.built)
            print("    %s  %s (%d built, %d reused)"
                  % (concrete.dag_hash()[:8], text, built,
                     len(result.reused)))
        return 0

    print("Error: unknown env action %r" % args.action, file=sys.stderr)
    return 1


def cmd_repo_list(args):
    session = _session(args)
    import fnmatch

    names = session.repo.all_package_names()
    pattern = _spec_arg(args)
    if pattern:
        names = [n for n in names if fnmatch.fnmatch(n, "*%s*" % pattern)]
    print("==> %d packages" % len(names))
    for name in names:
        print("    %s" % name)
    return 0


# -- wiring ------------------------------------------------------------------

def _add_spec_argument(parser):
    parser.add_argument("spec", nargs="*", help="spec expression")


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro-spack",
        description="Reproduction of the Spack package manager (SC '15)",
    )
    parser.add_argument("--root", help="session root directory")
    parser.add_argument(
        "--telemetry-log",
        metavar="FILE",
        help="append every telemetry record (spans, events) to FILE as JSONL",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    commands = {
        "install": (cmd_install, "concretize and install a spec"),
        "uninstall": (cmd_uninstall, "remove an installed spec"),
        "find": (cmd_find, "list installed specs matching a query"),
        "spec": (cmd_spec, "show the concretized DAG for a spec"),
        "explain": (cmd_explain, "English meaning of a spec (Table 2)"),
        "providers": (cmd_providers, "list providers of a virtual"),
        "versions": (cmd_versions, "declared + scraped versions"),
        "compilers": (cmd_compilers, "list available compilers"),
        "graph": (cmd_graph, "print the dependency DAG"),
        "module": (cmd_module, "regenerate module files"),
        "view": (cmd_view, "refresh a filesystem view"),
        "activate": (cmd_activate, "activate an extension"),
        "deactivate": (cmd_deactivate, "deactivate an extension"),
        "extensions": (cmd_extensions, "list extensions of a package"),
        "repo-list": (cmd_repo_list, "list all known packages"),
        "info": (cmd_info, "show package metadata"),
        "checksum": (cmd_checksum, "scrape versions and compute checksums"),
        "lmod": (cmd_lmod, "regenerate the Lmod hierarchy"),
        "location": (cmd_location, "print the install prefix of a spec"),
        "mirror": (cmd_mirror, "create or list a local source mirror"),
        "buildcache": (cmd_buildcache,
                       "push, pull, or list relocatable binary packages"),
        "verify": (cmd_verify, "check installed specs against provenance"),
        "reindex": (cmd_reindex, "rebuild the database from provenance files"),
        "fetch": (cmd_fetch, "download archives without installing"),
        "stage": (cmd_stage, "fetch, expand, and patch a package's source"),
        "clean": (cmd_clean, "remove build stages"),
        "create": (cmd_create, "generate package boilerplate from a URL"),
        "dependents": (cmd_dependents, "list packages that depend on one"),
        "selftest": (cmd_selftest, "run a seeded correctness campaign"),
        "diag": (cmd_diag,
                 "analyze telemetry traces and compare benchmark results"),
        "serve": (cmd_serve,
                  "run the resident concretize/install/query daemon"),
        "client": (cmd_client, "send one request to a running daemon"),
        "env": (cmd_env,
                "manage environments: many roots concretized together"),
    }
    for name, (func, help_text) in commands.items():
        p = sub.add_parser(name, help=help_text)
        if name == "buildcache":
            p.add_argument(
                "action", choices=("push", "pull", "list"),
                help="publish installed prefixes, install from the cache, "
                     "or show the index",
            )
        if name == "diag":
            p.add_argument(
                "action",
                choices=("trace", "critical-path", "metrics", "compare"),
                help="render a span tree, show its critical path, dump "
                     "aggregate metrics, or diff two benchmark results",
            )
            p.add_argument(
                "files", nargs="*",
                help="one --telemetry-log JSONL capture (trace/"
                     "critical-path/metrics) or two result files (compare)",
            )
            p.add_argument(
                "--min-ms", type=float, default=0.0, metavar="MS",
                help="trace: hide finished spans shorter than MS",
            )
            p.add_argument(
                "--prometheus", action="store_true",
                help="metrics: render in Prometheus text exposition format",
            )
            p.add_argument(
                "--tolerance", type=float, default=0.20, metavar="FRAC",
                help="compare: relative regression tolerance (default 0.20)",
            )
            p.add_argument(
                "-v", "--verbose", action="store_true",
                help="compare: also list metrics within tolerance",
            )
            p.set_defaults(func=func)
            continue
        if name == "serve":
            p.add_argument(
                "--host", default="127.0.0.1",
                help="interface to bind (default 127.0.0.1)",
            )
            p.add_argument(
                "--port", type=int, default=0, metavar="N",
                help="TCP port for the JSON-lines protocol "
                     "(default 0: pick an ephemeral port and print it)",
            )
            p.add_argument(
                "--stdio", action="store_true",
                help="serve the JSON-lines protocol on stdin/stdout "
                     "instead of a socket (MCP-style tool hosts)",
            )
            p.add_argument(
                "--workers", type=int, default=4, metavar="N",
                help="bounded request worker pool width (default 4)",
            )
            p.set_defaults(func=func)
            continue
        if name == "env":
            p.add_argument(
                "action",
                choices=("list", "add", "remove", "concretize", "status",
                         "install"),
                help="list environments, edit a root set, concretize all "
                     "roots together, report lock/install state, or "
                     "install the unified set",
            )
            p.add_argument(
                "name", nargs="?",
                help="environment name (everything except `list`)",
            )
            p.add_argument(
                "specs", nargs="*",
                help="abstract root specs (add/remove)",
            )
            p.add_argument(
                "-j", "--jobs", type=int, default=None, metavar="N",
                help="concurrent per-root solves (concretize/install); "
                     "the unified result is identical at any width",
            )
            p.add_argument(
                "--concretizer", choices=("greedy", "backtracking", "solver"),
                default=None,
                help="concretizer variant for every root "
                     "(default: the session's `concretizer:` config key)",
            )
            p.add_argument(
                "--force", action="store_true",
                help="concretize: ignore a fresh lockfile and re-unify",
            )
            p.set_defaults(func=func)
            continue
        if name == "client":
            p.add_argument(
                "endpoint",
                choices=("spack_list", "spack_info", "spack_spec",
                         "spack_install", "spack_find", "spack_env",
                         "status", "shutdown"),
                help="service endpoint to call",
            )
            p.add_argument(
                "spec", nargs="*",
                help="endpoint argument: a spec (spack_spec/spack_install), "
                     "root specs, one per argument (spack_env), "
                     "a package name (spack_info), or a query "
                     "(spack_list/spack_find)",
            )
            p.add_argument("--host", default="127.0.0.1",
                           help="daemon host (default 127.0.0.1)")
            p.add_argument("--port", type=int, required=True, metavar="N",
                           help="daemon port (printed by `serve`)")
            p.add_argument(
                "--concretizer", choices=("greedy", "backtracking", "solver"),
                default=None,
                help="concretizer variant for spack_spec/spack_install",
            )
            p.set_defaults(func=func)
            continue
        _add_spec_argument(p)
        p.set_defaults(func=func)
        if name == "install":
            p.add_argument(
                "--timers", action="store_true",
                help="print per-phase (fetch/stage/build/install) wall times",
            )
            p.add_argument(
                "-j", "--jobs", type=int, default=None, metavar="N",
                help="build up to N independent DAG nodes in parallel "
                     "(default: $REPRO_INSTALL_JOBS or 1)",
            )
            p.add_argument(
                "--fail-fast", action="store_true",
                help="stop dispatching new builds after the first failure "
                     "instead of finishing disjoint sub-DAGs",
            )
            cache_group = p.add_mutually_exclusive_group()
            cache_group.add_argument(
                "--use-cache", dest="use_cache", action="store_true",
                default=None,
                help="install cache hits by extracting + relocating binary "
                     "packages (enables the default cache if none is "
                     "configured)",
            )
            cache_group.add_argument(
                "--no-cache", dest="use_cache", action="store_false",
                help="build everything from source even when a build cache "
                     "is configured",
            )
            p.add_argument(
                "--no-splice", dest="use_splice", action="store_false",
                default=None,
                help="never satisfy a cache miss by splicing a runtime-hash "
                     "twin's binaries; exact dag-hash entries only",
            )
            p.add_argument(
                "--concretizer", choices=("greedy", "backtracking", "solver"),
                default=None,
                help="concretizer variant for the install's concretization "
                     "(default: the session's `concretizer:` config key)",
            )
        if name == "buildcache":
            p.add_argument(
                "--dir",
                help="build cache directory "
                     "(default: the configured cache, or <root>/cache/buildcache)",
            )
        if name == "uninstall":
            p.add_argument("--force", action="store_true", help="ignore dependents")
        if name == "find":
            p.add_argument("-d", "--deps", action="store_true",
                           help="show dependency trees")
        if name == "graph":
            p.add_argument("--dot", action="store_true", help="emit Graphviz DOT")
            p.add_argument(
                "--deptype", metavar="TYPES",
                help="only draw edges of these comma-separated types "
                     "(build,link,run) — e.g. --deptype link,run for the "
                     "runtime closure",
            )
        if name == "view":
            p.add_argument("--view-root", help="directory for the view")
            p.add_argument("--link", help="projection template for matched specs")
        if name == "spec":
            p.add_argument(
                "--backtrack", action="store_true",
                help="explore provider alternatives if greedy concretization fails",
            )
            p.add_argument(
                "--concretizer", choices=("greedy", "backtracking", "solver"),
                default=None,
                help="concretizer variant: the paper's greedy pass, the §4.5 "
                     "provider search, or the optimizing full-choice-space "
                     "solver (default: the session's `concretizer:` config key)",
            )
            p.add_argument(
                "--trace", action="store_true",
                help="show the Figure 6 pipeline stages while concretizing",
            )
            p.add_argument(
                "--no-concretize-cache", dest="concretize_cache",
                action="store_false",
                help="bypass the persistent concretization cache and "
                     "concretize from scratch",
            )
        if name == "mirror":
            p.add_argument("--create", action="store_true",
                           help="download archives for the given specs")
            p.add_argument("--dir", help="mirror directory (default <root>/mirror)")
        if name == "create":
            p.add_argument("--repo-dir", help="repository directory to write into")
        if name == "selftest":
            p.add_argument(
                "--seed", type=int, default=None,
                help="campaign master seed (default: $REPRO_TEST_SEED or the "
                     "built-in constant); same seed, same report",
            )
            p.add_argument(
                "--specs", type=int, default=200, metavar="N",
                help="generated requests for the differential oracle sweep",
            )
            p.add_argument(
                "--fault-plans", type=int, default=50, metavar="M",
                help="seeded fault plans for the install fault sweep",
            )
            p.add_argument(
                "--cache-specs", type=int, default=200, metavar="K",
                help="generated requests for the concretization-cache "
                     "equivalence sweep",
            )
            p.add_argument(
                "--splice-cases", type=int, default=6, metavar="S",
                help="spliced-vs-built store comparisons for the "
                     "splice-equivalence sweep",
            )
            p.add_argument(
                "--solver-cases", type=int, default=200, metavar="C",
                help="generated requests for the three-way "
                     "(greedy/backtracking/solver) oracle sweep over a "
                     "conflict-rich universe",
            )
            p.add_argument(
                "--env-cases", type=int, default=25, metavar="E",
                help="environment root-set unifications over a prefixed "
                     "hub-biased universe (coherence + pool-width "
                     "determinism)",
            )
            p.add_argument(
                "--report", metavar="FILE",
                help="write the campaign report to FILE as JSONL",
            )
    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as e:
        print("Error: %s" % e, file=sys.stderr)
        return 1
    finally:
        # Cap each --telemetry-log stream with the aggregate summary.
        while _ACTIVE_LOG_SINKS:
            hub, sink = _ACTIVE_LOG_SINKS.pop()
            hub.emit_summary()
            sink.close()


if __name__ == "__main__":
    sys.exit(main())
