"""The ``repro-spack`` command line."""

from repro.cli.main import main

__all__ = ["main"]
