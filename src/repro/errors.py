"""Root exception hierarchy for repro.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type at the top level (the CLI does exactly that).
Subsystems define their own subclasses next to the code that raises them.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library.

    Parameters
    ----------
    message:
        Short, user-facing description of what went wrong.
    long_message:
        Optional multi-line elaboration (e.g. which constraints conflicted).
    """

    def __init__(self, message, long_message=None):
        super().__init__(message)
        self.message = message
        self.long_message = long_message

    def __str__(self):
        if self.long_message:
            return "%s\n%s" % (self.message, self.long_message)
        return str(self.message)


class UnsupportedOperationError(ReproError):
    """An operation is not valid for the object's current state."""
