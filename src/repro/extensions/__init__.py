"""Extension packages: activate/deactivate into an extendee (paper §4.2)."""

from repro.extensions.activation import (
    ExtensionError,
    ExtensionConflictError,
    default_activate,
    default_deactivate,
    activated_extensions,
)
from repro.extensions.manager import ExtensionManager

__all__ = [
    "ExtensionManager",
    "ExtensionError",
    "ExtensionConflictError",
    "default_activate",
    "default_deactivate",
    "activated_extensions",
]
