"""Symlink mechanics of extension activation (paper §4.2).

"The activate operation symbolically links each file in the extension
prefix into the Python installation prefix, as if it were installed
directly.  If any file conflict would arise from this operation,
activate fails.  Similarly, the deactivate operation removes the
symbolic links and restores the Python installation to its pristine
state."

Extendable packages may override the hooks to merge known-conflicting
files (Python's ``easy-install.pth``); this module provides the default
behaviour plus the activation registry kept in the extendee's metadata
directory.
"""

import json
import os

from repro.errors import ReproError
from repro.store.layout import METADATA_DIR
from repro.util.filesystem import FilesystemError, LinkTree, mkdirp


class ExtensionError(ReproError):
    """Activation/deactivation failed."""


class ExtensionConflictError(ExtensionError):
    """A file in the extension already exists in the extendee."""

    def __init__(self, extendee, extension, path):
        super().__init__(
            "Cannot activate %s in %s: %s already exists"
            % (extension, extendee, path)
        )
        self.path = path


_REGISTRY_NAME = "extensions.json"


def _registry_path(extendee_prefix):
    return os.path.join(extendee_prefix, METADATA_DIR, _REGISTRY_NAME)


def _load_registry(extendee_prefix):
    path = _registry_path(extendee_prefix)
    if not os.path.isfile(path):
        return {}
    with open(path) as f:
        return json.load(f)


def _save_registry(extendee_prefix, registry):
    path = _registry_path(extendee_prefix)
    mkdirp(os.path.dirname(path))
    with open(path, "w") as f:
        json.dump(registry, f, indent=1, sort_keys=True)


def activated_extensions(extendee_prefix):
    """{extension name: {'version':..., 'hash':..., 'prefix':...}}."""
    return _load_registry(extendee_prefix)


def record_activation(extendee_prefix, ext_spec, ext_prefix):
    registry = _load_registry(extendee_prefix)
    registry[ext_spec.name] = {
        "version": str(ext_spec.version),
        "hash": ext_spec.dag_hash(),
        "prefix": ext_prefix,
    }
    _save_registry(extendee_prefix, registry)


def record_deactivation(extendee_prefix, ext_name):
    registry = _load_registry(extendee_prefix)
    registry.pop(ext_name, None)
    _save_registry(extendee_prefix, registry)


def _default_ignore(extra=None):
    """Never link the extension's own metadata directory."""

    def ignore(rel):
        if rel == METADATA_DIR or rel.startswith(METADATA_DIR + os.sep):
            return True
        return bool(extra and extra(rel))

    return ignore


def default_activate(extendee_pkg, extension_pkg, ignore=None, **kwargs):
    """Merge the extension's files into the extendee prefix as symlinks."""
    tree = LinkTree(extension_pkg.prefix)
    full_ignore = _default_ignore(ignore)
    conflict = tree.find_conflict(extendee_pkg.prefix, ignore=full_ignore)
    if conflict is not None:
        raise ExtensionConflictError(
            extendee_pkg.name, extension_pkg.name, conflict
        )
    try:
        tree.merge(extendee_pkg.prefix, ignore=full_ignore)
    except FilesystemError as e:
        raise ExtensionError(str(e)) from e


def default_deactivate(extendee_pkg, extension_pkg, ignore=None, **kwargs):
    """Remove the extension's symlinks, restoring the pristine prefix."""
    tree = LinkTree(extension_pkg.prefix)
    tree.unmerge(extendee_pkg.prefix, ignore=_default_ignore(ignore))
