"""Session-level extension operations: activate, deactivate, list.

The manager enforces the §4.2 invariants:

* only installed extensions can be activated, into an installed extendee;
* at most one version of an extension is active at a time;
* activation is recorded in the extendee's metadata, so ``extensions``
  can show activated vs merely-installed, and deactivation restores the
  pristine prefix.
"""

from repro.errors import ReproError
from repro.extensions.activation import (
    ExtensionError,
    activated_extensions,
    record_activation,
    record_deactivation,
)
from repro.spec.spec import Spec


class ExtensionManager:
    """Activate/deactivate extensions within a session."""

    def __init__(self, session):
        self.session = session

    # -- resolution helpers -------------------------------------------------
    def _resolve_installed(self, spec_like):
        spec = spec_like if isinstance(spec_like, Spec) else Spec(spec_like)
        if spec.concrete and self.session.db.installed(spec):
            return self.session.db.get(spec).spec
        records = self.session.db.query(spec)
        if not records:
            raise ExtensionError("Spec %s is not installed" % spec)
        if len(records) > 1:
            raise ExtensionError(
                "%d installed specs match %s; be more specific"
                % (len(records), spec)
            )
        return records[0].spec

    def _extension_pair(self, ext_spec):
        """(extendee_pkg, extension_pkg) for an installed extension spec."""
        ext = self._resolve_installed(ext_spec)
        ext_pkg = self.session.package_for(ext)
        if not ext_pkg.is_extension:
            raise ExtensionError("%s does not extend anything" % ext.name)
        extendee_name = next(iter(ext_pkg.extendees))
        try:
            extendee_node = ext[extendee_name]
        except KeyError:
            raise ExtensionError(
                "Extension %s has no %s in its DAG" % (ext.name, extendee_name)
            ) from None
        extendee = self._resolve_installed(extendee_node)
        extendee_pkg = self.session.package_for(extendee)
        if not extendee_pkg.extendable:
            raise ExtensionError("%s is not extendable" % extendee.name)
        ext.prefix = self.session.store.layout.path_for_spec(ext)
        extendee.prefix = self.session.store.layout.path_for_spec(extendee)
        return extendee_pkg, ext_pkg

    # -- operations -----------------------------------------------------------
    def activate(self, ext_spec):
        extendee_pkg, ext_pkg = self._extension_pair(ext_spec)
        active = activated_extensions(extendee_pkg.prefix)
        if ext_pkg.name in active:
            if active[ext_pkg.name]["hash"] == ext_pkg.spec.dag_hash():
                raise ExtensionError("%s is already activated" % ext_pkg.name)
            raise ExtensionError(
                "Another version of %s (%s) is already activated; "
                "deactivate it first" % (ext_pkg.name, active[ext_pkg.name]["version"])
            )
        extendee_pkg.activate(ext_pkg)
        record_activation(extendee_pkg.prefix, ext_pkg.spec, ext_pkg.prefix)
        return extendee_pkg.spec

    def deactivate(self, ext_spec):
        extendee_pkg, ext_pkg = self._extension_pair(ext_spec)
        active = activated_extensions(extendee_pkg.prefix)
        if ext_pkg.name not in active:
            raise ExtensionError("%s is not activated" % ext_pkg.name)
        extendee_pkg.deactivate(ext_pkg)
        record_deactivation(extendee_pkg.prefix, ext_pkg.name)
        return extendee_pkg.spec

    def extensions_of(self, extendee_spec):
        """(installed, activated) extension lists for an extendee."""
        extendee = self._resolve_installed(extendee_spec)
        prefix = self.session.store.layout.path_for_spec(extendee)
        active = activated_extensions(prefix)
        installed = []
        for record in self.session.db.all_records():
            cls = None
            if self.session.repo.exists(record.spec.name):
                cls = self.session.repo.get_class(record.spec.name)
            if cls is not None and extendee.name in getattr(cls, "extendees", {}):
                installed.append(record.spec)
        return installed, active
