"""Architecture descriptions (§4.5 future work, implemented)."""

from repro.platforms.platforms import (
    DEFAULT_PLATFORMS,
    Platform,
    PlatformRegistry,
)

__all__ = ["Platform", "PlatformRegistry", "DEFAULT_PLATFORMS"]
