"""Per-architecture build knowledge, factored out of package files.

The paper's §4.5: "we cannot currently factor common preferences (like
configure arguments and architecture-specific compiler flags) out of
packages and into separate architecture descriptions, which leads to
some clutter in the package files when too many per-platform conditions
accumulate."

A :class:`Platform` centralizes exactly those two things:

* ``configure_args`` — appended to every ``configure`` run on that
  architecture (cross-compilation ``--host`` triples and friends);
* ``compiler_flags`` — per-toolchain target flags, injected by the
  compiler wrappers alongside the dependency flags, so ``-qarch=qp``
  lives *here* once instead of in every package that builds on BG/Q.

Packages keep working unmodified; platform knowledge comes in through
the build environment (``SPACK_TARGET_FLAGS``) and the fake build
system, the same paths a real build would use.
"""


class Platform:
    """One architecture description."""

    def __init__(self, name, configure_args=(), compiler_flags=None, description=""):
        self.name = name
        self.configure_args = list(configure_args)
        self.compiler_flags = {k: list(v) for k, v in (compiler_flags or {}).items()}
        self.description = description

    def flags_for(self, compiler_name):
        return list(self.compiler_flags.get(compiler_name, ()))

    def __repr__(self):
        return "Platform(%r)" % self.name


#: the architectures the paper's evaluation spans (Table 3)
DEFAULT_PLATFORMS = [
    Platform(
        "linux-x86_64",
        description="commodity Linux cluster",
    ),
    Platform(
        "linux-ppc64",
        compiler_flags={"gcc": ["-mcpu=power7"], "xl": ["-qarch=pwr7"]},
        description="Power7 front-end node",
    ),
    Platform(
        "bgq",
        configure_args=["--host=powerpc64-bgq-linux"],
        compiler_flags={
            "xl": ["-qarch=qp", "-q64"],
            "gcc": ["-mcpu=a2"],
            "clang": ["--target=powerpc64-bgq-linux"],
        },
        description="Blue Gene/Q compute node (cross-compiled)",
    ),
    Platform(
        "cray_xe6",
        configure_args=["--host=x86_64-cray-linux"],
        compiler_flags={
            "pgi": ["-tp=istanbul-64"],
            "gcc": ["-march=amdfam10"],
            "clang": ["-march=amdfam10"],
        },
        description="Cray XE6 (Cielo-class)",
    ),
]


class PlatformRegistry:
    """Known architecture descriptions for a session."""

    def __init__(self, platforms=None):
        self._platforms = {}
        for platform in platforms if platforms is not None else DEFAULT_PLATFORMS:
            self.add(platform)

    def add(self, platform):
        self._platforms[platform.name] = platform

    def get(self, name):
        """The Platform for an architecture; unknown names get an empty
        description (no special args/flags) so builds never fail on a
        new architecture string."""
        if name in self._platforms:
            return self._platforms[name]
        return Platform(name or "unknown")

    def names(self):
        return sorted(self._platforms)

    def __contains__(self, name):
        return name in self._platforms
