"""A minimal client for the service wire protocol.

One socket, JSON lines out, JSON lines back.  Each client instance is a
single-threaded conversation (ids are matched, responses arrive in
request order on one connection); open one client per thread to issue
concurrent requests — the daemon's pool interleaves them server-side.

    with ServiceClient("127.0.0.1", port) as client:
        concrete = client.call("spack_spec", spec="mpileaks ^mpich")
        client.shutdown()
"""

import itertools
import json

from repro.errors import ReproError
from repro.service.transport import connect


class ServiceClientError(ReproError):
    """The server answered ``ok: false`` (carries the remote error)."""

    def __init__(self, error):
        self.remote_type = (error or {}).get("type", "Error")
        self.remote_message = (error or {}).get("message", "")
        super().__init__(
            "service error [%s]: %s" % (self.remote_type, self.remote_message)
        )


class ServiceClient:
    """Blocking JSON-lines client for one daemon connection."""

    def __init__(self, host="127.0.0.1", port=0, timeout=60.0):
        self._sock = connect(host, port, timeout=timeout)
        self._reader = self._sock.makefile("r", encoding="utf-8")
        self._writer = self._sock.makefile("w", encoding="utf-8")
        self._ids = itertools.count(1)

    def call(self, endpoint, **params):
        """Issue one request; returns the result or raises
        :class:`ServiceClientError` with the server's error."""
        request_id = next(self._ids)
        self._writer.write(json.dumps(
            {"id": request_id, "endpoint": endpoint, "params": params}
        ) + "\n")
        self._writer.flush()
        line = self._reader.readline()
        if not line:
            raise ReproError("Service closed the connection mid-request")
        response = json.loads(line)
        if not response.get("ok"):
            raise ServiceClientError(response.get("error"))
        return response.get("result")

    # -- conveniences mirroring the tool surface ---------------------------
    def spack_list(self, query=None):
        return self.call("spack_list", query=query)

    def spack_info(self, package):
        return self.call("spack_info", package=package)

    def spack_spec(self, spec, concretizer=None):
        return self.call("spack_spec", spec=spec, concretizer=concretizer)

    def spack_install(self, spec, **kwargs):
        return self.call("spack_install", spec=spec, **kwargs)

    def spack_find(self, query=None):
        return self.call("spack_find", query=query)

    def spack_env(self, roots, concretizer=None, jobs=None):
        return self.call("spack_env", roots=list(roots),
                         concretizer=concretizer, jobs=jobs)

    def status(self):
        return self.call("status")

    def shutdown(self):
        return self.call("shutdown")

    def close(self):
        for stream in (self._reader, self._writer):
            try:
                stream.close()
            except OSError:
                pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False
