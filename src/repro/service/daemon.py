"""The resident service daemon: one warm session, many requests.

``ServiceDaemon`` owns a :class:`~repro.session.Session` and serves the
hpc-mcp tool surface (``spack_list`` / ``spack_info`` / ``spack_spec`` /
``spack_install`` / ``spack_find``) plus ``status`` and ``shutdown``
over a bounded worker pool.  The moving parts:

* **Snapshot isolation** — every request resolves against the
  :class:`~repro.service.snapshot.StateSnapshot` current at dispatch
  time; a mid-flight package/config mutation forks a new snapshot for
  *later* requests and never disturbs in-flight ones.
* **Request batching** — a thundering herd of requests for the same
  (spec, digest, variant) cache key concretizes **once**: the first
  requester becomes the leader, followers park on an event and share the
  leader's result (each still gets a private copy).  Counted on
  ``service.batch.coalesced``.
* **Per-request traces** — each request runs under a root
  ``service.request`` span on its worker thread, so one request is one
  single-rooted trace (the PR-6 analysis machinery applies unchanged);
  cross-thread work it spawns rides the usual
  :class:`~repro.telemetry.hub.TraceContext` propagation.
* **Writes stay on the live session** — ``spack_install`` concretizes
  on the snapshot but installs through the session's DAG-parallel
  installer, whose per-prefix locks and database transactions already
  arbitrate concurrent writers.
"""

import itertools
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.errors import ReproError
from repro.service.snapshot import SnapshotManager

#: default dispatcher width (requests resolved concurrently)
DEFAULT_WORKERS = 4

#: the tool surface served, in the hpc-mcp workflow order, plus the
#: daemon's own control endpoints
ENDPOINTS = (
    "spack_list",
    "spack_info",
    "spack_spec",
    "spack_install",
    "spack_find",
    "spack_env",
    "status",
    "shutdown",
)


class ServiceError(ReproError):
    """A request the daemon cannot serve (unknown endpoint, bad params)."""


class _Batch:
    """One in-flight concretization shared by a herd of identical
    requests: the leader computes, followers wait on ``done``."""

    __slots__ = ("done", "result", "error", "followers")

    def __init__(self):
        self.done = threading.Event()
        self.result = None
        self.error = None
        self.followers = 0


class ServiceDaemon:
    """A long-running concretize/install/query server around one Session."""

    def __init__(self, session, workers=DEFAULT_WORKERS):
        self.session = session
        self.snapshots = SnapshotManager(session)
        self.workers = max(1, int(workers))
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-service"
        )
        self._request_ids = itertools.count(1)
        self._inflight = {}
        self._batch_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._active = 0
        self._served = 0
        self._errors = 0
        self.coalesced = 0
        self._started = time.time()
        self.shutdown_event = threading.Event()

    # -- dispatch ----------------------------------------------------------
    def submit(self, endpoint, params=None):
        """Dispatch a request to the worker pool; returns a Future."""
        if endpoint not in ENDPOINTS:
            raise ServiceError(
                "Unknown endpoint %r (expected one of: %s)"
                % (endpoint, ", ".join(ENDPOINTS))
            )
        if self.shutdown_event.is_set():
            raise ServiceError("Daemon is shutting down")
        request_id = next(self._request_ids)
        return self._pool.submit(self._handle, request_id, endpoint,
                                 dict(params or {}))

    def call(self, endpoint, params=None):
        """Dispatch and wait: the synchronous face transports use."""
        return self.submit(endpoint, params).result()

    def _handle(self, request_id, endpoint, params):
        telemetry = self.session.telemetry
        with self._state_lock:
            self._active += 1
        # the root span: opened with no enclosing span on this worker
        # thread, so every request is its own single-rooted trace
        with telemetry.span(
            "service.request", endpoint=endpoint, request=request_id
        ):
            try:
                result = getattr(self, "_ep_%s" % endpoint)(**params)
            except TypeError as e:
                # surface bad params as a service error, not a crash
                self._count_error()
                raise ServiceError(
                    "Bad parameters for %s: %s" % (endpoint, e)
                ) from e
            except Exception:
                self._count_error()
                raise
            finally:
                with self._state_lock:
                    self._active -= 1
        with self._state_lock:
            self._served += 1
        telemetry.count("service.requests")
        return result

    def _count_error(self):
        with self._state_lock:
            self._errors += 1
        self.session.telemetry.count("service.errors")

    # -- batched concretization --------------------------------------------
    def _concretize(self, snapshot, spec_text, variant):
        """Concretize on a snapshot, coalescing identical in-flight
        requests onto one computation."""
        from repro.core.conc_cache import ConcretizationCache
        from repro.spec.spec import Spec

        spec = Spec(spec_text)
        database = self.session.db if variant == "solver" else None
        key = ConcretizationCache.make_key(
            str(spec), snapshot.cache_digest(variant, database), variant
        )
        with self._batch_lock:
            batch = self._inflight.get(key)
            leader = batch is None
            if leader:
                batch = self._inflight[key] = _Batch()
            else:
                batch.followers += 1
        if leader:
            try:
                batch.result = snapshot.concretize(
                    spec, variant, database=database
                )
            except Exception as e:
                batch.error = e
            finally:
                with self._batch_lock:
                    self._inflight.pop(key, None)
                batch.done.set()
        else:
            batch.done.wait()
            with self._state_lock:
                self.coalesced += 1
            self.session.telemetry.count("service.batch.coalesced")
        if batch.error is not None:
            raise batch.error
        return batch.result.copy()

    def _variant(self, concretizer):
        session = self.session
        variant = concretizer or session.config.get(
            "concretizer", default="greedy"
        )
        if variant not in session.CONCRETIZER_VARIANTS:
            raise ServiceError(
                "Unknown concretizer %r (expected one of: %s)"
                % (variant, ", ".join(session.CONCRETIZER_VARIANTS))
            )
        return variant

    # -- endpoints ---------------------------------------------------------
    def _ep_spack_list(self, query=None):
        snapshot = self.snapshots.current()
        names = snapshot.list_packages(query)
        return {"packages": names, "count": len(names),
                "env_digest": snapshot.env_digest}

    def _ep_spack_info(self, package):
        snapshot = self.snapshots.current()
        info = snapshot.package_info(package)
        info["env_digest"] = snapshot.env_digest
        return info

    def _ep_spack_spec(self, spec, concretizer=None):
        snapshot = self.snapshots.current()
        variant = self._variant(concretizer)
        concrete = self._concretize(snapshot, spec, variant)
        return {
            "spec": str(concrete),
            "dag_hash": concrete.dag_hash(),
            "tree": concrete.tree(),
            "nodes": [
                {"name": node.name, "version": str(node.version),
                 "compiler": str(node.compiler) if node.compiler else None,
                 "dag_hash": node.dag_hash()}
                for node in concrete.traverse()
            ],
            "concretizer": variant,
            "env_digest": snapshot.env_digest,
        }

    def _ep_spack_install(self, spec, concretizer=None, jobs=None,
                          use_cache=None, use_splice=None):
        snapshot = self.snapshots.current()
        concrete = self._concretize(snapshot, spec, self._variant(concretizer))
        result = self.session.installer.install(
            concrete, jobs=jobs, use_cache=use_cache, use_splice=use_splice
        )
        return {
            "spec": str(concrete),
            "dag_hash": concrete.dag_hash(),
            "prefix": self.session.store.layout.path_for_spec(concrete),
            "built": [s.spec.name for s in result.built],
            "cached": [s.spec.name for s in result.cached],
            "spliced": [s.spec.name for s in result.spliced],
            "reused": [n.name for n in result.reused],
            "externals": [n.name for n in result.externals],
            "wall_seconds": result.wall_seconds,
            "env_digest": snapshot.env_digest,
        }

    def _ep_spack_env(self, roots, concretizer=None, jobs=None):
        """Concretize many roots together (repro.env.unify) against the
        snapshot current at dispatch — the whole environment resolves
        under ONE consistent package/config state even if a mutation
        lands mid-unification.  Per-root solves go through the batched
        ``_concretize`` path, so two clients unifying overlapping
        environments coalesce their shared roots."""
        from repro.env.unify import unify_roots

        if not isinstance(roots, (list, tuple)) or not roots:
            raise ServiceError(
                "spack_env needs a non-empty `roots` list of abstract specs"
            )
        snapshot = self.snapshots.current()
        variant = self._variant(concretizer)
        jobs = max(1, int(jobs or 1))
        unified = unify_roots(
            [str(r) for r in roots],
            lambda spec: self._concretize(snapshot, str(spec), variant),
            jobs=jobs,
            telemetry=self.session.telemetry,
        )
        stats = unified.stats()
        return {
            "roots": [
                {"root": text, "spec": str(concrete),
                 "dag_hash": concrete.dag_hash()}
                for text, concrete in unified.roots
            ],
            "unique_nodes": stats["unique_nodes"],
            "shared_packages": stats["shared_packages"],
            "rounds": stats["rounds"],
            "resolves": stats["resolves"],
            "pins": dict(unified.pins),
            "concretizer": variant,
            "env_digest": snapshot.env_digest,
        }

    def _ep_spack_find(self, query=None):
        records = self.session.db.query(query or None)
        return {
            "specs": [
                {"spec": str(r.spec), "dag_hash": r.spec.dag_hash(),
                 "prefix": r.prefix, "explicit": bool(r.explicit)}
                for r in records
            ],
            "count": len(records),
        }

    def _ep_status(self):
        snapshot = self.snapshots.current()
        with self._state_lock:
            active, served, errors = self._active, self._served, self._errors
            coalesced = self.coalesced
        hist = self.session.telemetry.histograms.get("service.request")
        latency = hist.to_dict() if hist is not None else None
        return {
            "uptime_s": time.time() - self._started,
            "workers": self.workers,
            "requests": {"served": served, "active": active,
                         "errors": errors, "coalesced": coalesced},
            "snapshot": {"env_digest": snapshot.env_digest,
                         "packages": len(snapshot.repo),
                         "forks": self.snapshots.forks},
            "latency": latency,
            "endpoints": list(ENDPOINTS),
        }

    def _ep_shutdown(self):
        self.shutdown_event.set()
        with self._state_lock:
            served = self._served
        return {"ok": True, "served": served}

    # -- lifecycle ---------------------------------------------------------
    def close(self, wait=True):
        """Stop accepting work and drain the pool."""
        self.shutdown_event.set()
        self._pool.shutdown(wait=wait)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def __repr__(self):
        return "ServiceDaemon(%r, workers=%d)" % (
            self.session.root, self.workers,
        )
