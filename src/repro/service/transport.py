"""Thin transports in front of the daemon: JSON lines over a socket or
stdio.

The wire protocol is deliberately minimal — one JSON object per line in
each direction, a shape any MCP-style tool host can speak:

request::

    {"id": 7, "endpoint": "spack_spec", "params": {"spec": "mpileaks"}}

response::

    {"id": 7, "ok": true, "result": {...}}
    {"id": 7, "ok": false, "error": {"type": "SpecError", "message": "..."}}

The transport never interprets requests: it parses, hands the endpoint
and params to :meth:`ServiceDaemon.call`, and serializes whatever comes
back.  Concurrency lives in the daemon's worker pool; the socket server
merely gives each connection a reader thread, so many clients block
independently while the pool bounds actual work.  A ``shutdown``
request is answered first, then the server unwinds.
"""

import json
import socket
import socketserver
import sys
import threading


def handle_line(daemon, line):
    """One request line in, one response line out (no trailing newline).

    All errors — parse failures, unknown endpoints, concretization
    errors — become ``ok: false`` responses; the connection survives.
    """
    request_id = None
    try:
        try:
            request = json.loads(line)
        except ValueError as e:
            raise ValueError("Request is not valid JSON: %s" % e) from e
        if not isinstance(request, dict):
            raise ValueError("Request must be a JSON object")
        request_id = request.get("id")
        endpoint = request.get("endpoint")
        params = request.get("params") or {}
        if not isinstance(params, dict):
            raise ValueError("'params' must be a JSON object")
        result = daemon.call(endpoint, params)
        response = {"id": request_id, "ok": True, "result": result}
    except Exception as e:
        response = {
            "id": request_id,
            "ok": False,
            "error": {"type": type(e).__name__, "message": str(e)},
        }
    return json.dumps(response, sort_keys=True)


class _RequestHandler(socketserver.StreamRequestHandler):
    def handle(self):
        daemon = self.server.service_daemon
        for raw in self.rfile:
            line = raw.decode("utf-8", "replace").strip()
            if not line:
                continue
            response = handle_line(daemon, line)
            try:
                self.wfile.write(response.encode() + b"\n")
                self.wfile.flush()
            except (BrokenPipeError, ConnectionResetError):
                return
            if daemon.shutdown_event.is_set():
                self.server.begin_shutdown()
                return


class SocketTransport(socketserver.ThreadingTCPServer):
    """``repro-spack serve --port N``: a threaded JSON-lines TCP server.

    Connection threads are daemonic and the listener reuses its address,
    so tests and the CLI can start/stop servers freely.  ``port=0``
    binds an ephemeral port; read it back from :attr:`address`.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, daemon, host="127.0.0.1", port=0):
        super().__init__((host, port), _RequestHandler)
        self.service_daemon = daemon
        self._shutdown_started = threading.Event()

    @property
    def address(self):
        """(host, port) actually bound."""
        return self.server_address[:2]

    def begin_shutdown(self):
        """Idempotent async shutdown (callable from handler threads —
        ``shutdown()`` itself would deadlock the serve loop's thread)."""
        if self._shutdown_started.is_set():
            return
        self._shutdown_started.set()
        threading.Thread(target=self.shutdown, daemon=True).start()

    def serve_until_shutdown(self, poll_interval=0.2):
        """Serve until a ``shutdown`` request lands, then drain."""
        try:
            self.serve_forever(poll_interval=poll_interval)
        finally:
            self.server_close()
            self.service_daemon.close()


class StdioTransport:
    """``repro-spack serve --stdio``: requests on stdin, responses on
    stdout — the transport an MCP tool host or a subprocess pipe wants.

    Requests are answered in arrival order; the daemon pool still
    coalesces identical concretizations issued back-to-back by keeping
    their snapshot and cache state warm.
    """

    def __init__(self, daemon, stdin=None, stdout=None):
        self.daemon = daemon
        self.stdin = stdin if stdin is not None else sys.stdin
        self.stdout = stdout if stdout is not None else sys.stdout

    def serve_until_shutdown(self):
        try:
            for raw in self.stdin:
                line = raw.strip()
                if not line:
                    continue
                self.stdout.write(handle_line(self.daemon, line) + "\n")
                self.stdout.flush()
                if self.daemon.shutdown_event.is_set():
                    break
        finally:
            self.daemon.close()


def connect(host, port, timeout=30.0):
    """A connected socket to a running service (client side)."""
    return socket.create_connection((host, port), timeout=timeout)
