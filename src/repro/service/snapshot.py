"""Snapshot-isolated read state for the service daemon.

A resident daemon serves hundreds of concurrent concretize/query
requests, but the code under it — ``Repository``, ``Config``,
``ProviderIndex`` — was written for a single-threaded owner: repos can
gain packages mid-request, config scopes merge in place, and the
provider index clears its memo on every update.  Rather than sprinkle
locks through every read path (contention on exactly the hottest
lookups), the daemon freezes the whole read side into an immutable
:class:`StateSnapshot` keyed by the environment digest of
:mod:`repro.core.conc_cache`:

* every in-flight request holds a reference to the snapshot it started
  on and finishes there, however the live session mutates meanwhile
  (snapshot isolation — the Guix daemon's model);
* a mutation (new package, config update, compiler change) is noticed
  by :class:`SnapshotManager` through the same cheap mutation tokens
  the concretization cache uses, and the *next* request gets a freshly
  forked snapshot with the new digest;
* immutable state needs no locks, so concurrent requests share one warm
  intern pool, the per-snapshot concretization memo, and the persistent
  on-disk cache without serializing on the read path.

Snapshots are cheap to fork: package *classes* are shared by reference
(they are immutable directive state), the config is one deep-copied
merged dict, and the provider index is rebuilt once per fork — only
mutations pay, never steady-state requests.
"""

import copy
import fnmatch
import threading

from repro.config.config import Config, ConfigError
from repro.core.conc_cache import ConcretizationCache, EnvironmentDigest
from repro.core.concretizer import Concretizer
from repro.core.policies import DefaultPolicy
from repro.repo.providers import ProviderIndex
from repro.spec.spec import Spec


class RepoSnapshot:
    """An immutable view of a repo stack: the read API of
    :class:`~repro.repo.repository.RepoPath`, frozen at fork time.

    Package classes are shared by reference — a class's directive state
    never mutates in place (re-registration replaces the table entry,
    which this copy does not see).
    """

    def __init__(self, repo):
        from repro.repo.repository import NoSuchPackageError

        self._no_such = NoSuchPackageError
        self._classes = dict(repo.all_classes())
        self._token = repo.mutation_token()

    def mutation_token(self):
        """Frozen at fork time: a snapshot never changes."""
        return self._token

    def exists(self, name):
        return name in self._classes

    def get_class(self, name):
        try:
            return self._classes[name]
        except KeyError:
            raise self._no_such(name, "snapshot") from None

    def all_package_names(self):
        return sorted(self._classes)

    def all_classes(self):
        return dict(self._classes)

    def __contains__(self, name):
        return name in self._classes

    def __len__(self):
        return len(self._classes)

    def __repr__(self):
        return "RepoSnapshot(%d packages, token=%r)" % (
            len(self._classes), self._token,
        )


class FrozenConfig(Config):
    """A :class:`~repro.config.config.Config` collapsed to one immutable
    pre-merged scope.

    ``merged()`` is the hot call under the concretizer (every
    ``config.get`` goes through it); the live implementation re-merges
    the scope stack per call, which this freeze turns into returning one
    precomputed dict.  Mutation is refused — fork a new snapshot instead.
    """

    def __init__(self, merged_data):
        super().__init__()
        self._frozen = False
        super().update("defaults", copy.deepcopy(merged_data))
        self._merged = super().merged()
        self._frozen = True

    def merged(self):
        return self._merged

    def push_scope(self, scope):
        if getattr(self, "_frozen", False):
            raise ConfigError("FrozenConfig is immutable; fork a new snapshot")
        super().push_scope(scope)

    def update(self, scope_name, data):
        if getattr(self, "_frozen", False):
            raise ConfigError("FrozenConfig is immutable; fork a new snapshot")
        super().update(scope_name, data)


class StateSnapshot:
    """Everything a read-only request needs, frozen and digest-keyed.

    Holds the frozen repo/config, a compiler registry copy, a policy
    bound to the frozen config, a provider index built over the frozen
    classes, and the environment digest those produce — byte-identical
    to the digest a single-threaded ``Session`` computes for the same
    state, so daemon and CLI share persistent concretization-cache
    entries.
    """

    def __init__(self, session):
        self.repo = RepoSnapshot(session.repo)
        self.config = FrozenConfig(session.config.merged())
        from repro.compilers.registry import CompilerRegistry

        self.compilers = CompilerRegistry(session.compilers.all_compilers())
        # rebind config-driven policies to the frozen config; opaque
        # custom policies are shared as-is (they fingerprint by class)
        live_policy = session.policy
        if isinstance(live_policy, DefaultPolicy) or hasattr(live_policy, "config"):
            self.policy = type(live_policy)(self.config)
        else:
            self.policy = live_policy
        self.provider_index = ProviderIndex.from_repo(self.repo)
        self.telemetry = session.telemetry
        #: the shared persistent cache (thread-safe; may be None)
        self.conc_cache = session.concretize_cache
        self.env_digest = EnvironmentDigest(
            self.repo, self.compilers, self.config, self.policy
        ).current()
        #: in-process memo: cache key -> concrete Spec (master copy);
        #: guarded — many worker threads share one snapshot
        self._memo = {}
        self._memo_lock = threading.Lock()

    # -- concretization ----------------------------------------------------
    def cache_digest(self, variant, database=None):
        """The digest cache keys embed: the environment digest, plus the
        installed-set fingerprint for the solver variant (its reuse
        objective reads the database)."""
        if variant == "solver" and database is not None:
            import hashlib

            hashes = sorted(r.spec.dag_hash() for r in database.query())
            return "%s/%s" % (
                self.env_digest,
                hashlib.sha256("\n".join(hashes).encode()).hexdigest(),
            )
        return self.env_digest

    def concretize(self, spec, variant="greedy", database=None):
        """Concretize against this snapshot; returns a fresh Spec.

        Served from the snapshot memo, then the shared persistent cache,
        then a cold run of the requested concretizer variant — all built
        solely from frozen state, so any number of threads may call this
        at once.
        """
        if isinstance(spec, str):
            spec = Spec(spec)
        key = ConcretizationCache.make_key(
            str(spec), self.cache_digest(variant, database), variant
        )
        with self._memo_lock:
            master = self._memo.get(key)
        if master is not None:
            self.telemetry.count("concretize.cache.hit")
            return master.copy()
        cached = self.conc_cache.lookup(key) if self.conc_cache else None
        if cached is not None:
            with self._memo_lock:
                self._memo[key] = cached
            return cached.copy()
        concrete = self._concretize_cold(spec, variant, database)
        if self.conc_cache is not None:
            self.conc_cache.store(key, concrete)
        with self._memo_lock:
            self._memo[key] = concrete.copy()
        return concrete

    def _concretize_cold(self, spec, variant, database=None):
        args = (self.repo, self.provider_index, self.compilers,
                self.config, self.policy)
        if variant == "backtracking":
            from repro.core.backtracking import BacktrackingConcretizer

            return BacktrackingConcretizer(
                *args, telemetry=self.telemetry
            ).concretize(spec)
        if variant == "solver":
            from repro.core.solver import SolverConcretizer

            return SolverConcretizer(
                *args, telemetry=self.telemetry, database=database
            ).concretize(spec)
        return Concretizer(*args, telemetry=self.telemetry).concretize(spec)

    # -- read-only queries -------------------------------------------------
    def list_packages(self, pattern=None):
        """Package names, optionally substring/glob filtered
        (``spack_list``)."""
        names = self.repo.all_package_names()
        if pattern:
            names = [n for n in names if fnmatch.fnmatch(n, "*%s*" % pattern)]
        return names

    def package_info(self, name):
        """JSON-able metadata for one package (``spack_info``)."""
        cls = self.repo.get_class(name)
        doc = (cls.__doc__ or "").strip()
        return {
            "name": name,
            "homepage": cls.homepage,
            "url": cls.url,
            "description": doc.splitlines()[0] if doc else None,
            "versions": [str(v) for v in sorted(cls.versions, reverse=True)],
            "safe_versions": [str(v) for v in cls.safe_versions()],
            "variants": {
                vname: {"default": bool(v.default),
                        "description": v.description}
                for vname, v in sorted(cls.variants.items())
            },
            "dependencies": [
                {"spec": str(dc.spec),
                 "when": str(dc.when) if dc.when is not None else None,
                 "types": sorted(dc.deptypes)}
                for _, constraints in sorted(cls.dependencies.items())
                for dc in constraints
            ],
            "provides": [
                {"spec": str(p.spec),
                 "when": str(p.when) if p.when is not None else None}
                for p in cls.provided
            ],
        }

    def __repr__(self):
        return "StateSnapshot(%s, %d packages)" % (
            self.env_digest[:12], len(self.repo),
        )


class SnapshotManager:
    """Forks a fresh :class:`StateSnapshot` when the session's mutation
    tokens move; hands out the current one otherwise.

    ``current()`` is what the dispatcher calls per request: steady state
    is one token comparison under a short lock, and the expensive fork
    runs at most once per mutation however many requests race past it.
    """

    def __init__(self, session):
        self.session = session
        self._lock = threading.Lock()
        self._snapshot = None
        self._token = None
        self.forks = 0

    def _live_token(self):
        session = self.session
        return (
            session.repo.mutation_token(),
            session.config.mutation_token(),
            tuple(str(c) for c in session.compilers.all_compilers()),
            type(session.policy),
        )

    def current(self):
        """The snapshot matching the session's present state."""
        token = self._live_token()
        with self._lock:
            if self._snapshot is None or token != self._token:
                self._snapshot = StateSnapshot(self.session)
                self._token = token
                self.forks += 1
                self.session.telemetry.count("service.snapshot.fork")
            return self._snapshot
