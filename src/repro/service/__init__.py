"""Service mode: a resident concretize/install/query daemon.

See :mod:`repro.service.daemon` for the dispatcher,
:mod:`repro.service.snapshot` for the snapshot-isolated read state, and
:mod:`repro.service.transport` for the JSON-lines socket/stdio wire.
"""

from repro.service.client import ServiceClient, ServiceClientError
from repro.service.daemon import ENDPOINTS, ServiceDaemon, ServiceError
from repro.service.snapshot import SnapshotManager, StateSnapshot
from repro.service.transport import SocketTransport, StdioTransport

__all__ = [
    "ENDPOINTS",
    "ServiceClient",
    "ServiceClientError",
    "ServiceDaemon",
    "ServiceError",
    "SnapshotManager",
    "SocketTransport",
    "StateSnapshot",
    "StdioTransport",
]
