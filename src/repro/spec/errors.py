"""Errors raised by spec parsing, constraint intersection, and validation.

The concretizer's contract (paper §3.4) is that any inconsistency —
between the user's constraints and the package files', or among package
files — stops the process with an actionable message.  Each constraint
kind has its own unsatisfiable-error subclass so messages can point at
the exact conflicting parameter.
"""

from repro.errors import ReproError


class SpecError(ReproError):
    """Base for all spec-related errors."""


class SpecParseError(SpecError):
    """The spec expression does not match the Figure 3 grammar."""

    def __init__(self, message, string=None, pos=None):
        long_message = None
        if string is not None and pos is not None:
            long_message = "%s\n%s^" % (string, " " * pos)
        super().__init__(message, long_message)
        self.string = string
        self.pos = pos


class UnsatisfiableSpecError(SpecError):
    """Two constraints on the same package cannot both hold."""

    def __init__(self, provided, required, constraint_type):
        super().__init__(
            "%s constraint '%s' conflicts with '%s'"
            % (constraint_type, provided, required)
        )
        self.provided = provided
        self.required = required
        self.constraint_type = constraint_type


class UnsatisfiableVersionSpecError(UnsatisfiableSpecError):
    def __init__(self, provided, required):
        super().__init__(provided, required, "version")


class UnsatisfiableCompilerSpecError(UnsatisfiableSpecError):
    def __init__(self, provided, required):
        super().__init__(provided, required, "compiler")


class UnsatisfiableVariantSpecError(UnsatisfiableSpecError):
    def __init__(self, provided, required):
        super().__init__(provided, required, "variant")


class UnsatisfiableArchitectureSpecError(UnsatisfiableSpecError):
    def __init__(self, provided, required):
        super().__init__(provided, required, "architecture")


class UnsatisfiableSpecNameError(UnsatisfiableSpecError):
    def __init__(self, provided, required):
        super().__init__(provided, required, "name")


class UnsatisfiableProviderSpecError(UnsatisfiableSpecError):
    """A virtual dependency has no provider meeting its constraints."""

    def __init__(self, provided, required):
        super().__init__(provided, required, "provider")


class DuplicateDependencyError(SpecError):
    """The same dependency name was specified twice on one spec."""


class DuplicateVariantError(SpecError):
    """The same variant appears twice in one spec expression."""


class DuplicateCompilerSpecError(SpecError):
    """More than one ``%compiler`` on a single spec node."""


class DuplicateArchitectureError(SpecError):
    """More than one ``=arch`` on a single spec node."""


class UnknownVariantError(SpecError):
    """A spec names a variant the package does not define."""

    def __init__(self, package_name, variant_name):
        super().__init__(
            "Package %s has no variant %r" % (package_name, variant_name)
        )
        self.package_name = package_name
        self.variant_name = variant_name


class InvalidDependencyError(SpecError):
    """A ^dependency constraint names a package the root cannot reach."""
