"""The :class:`Spec` DAG type — the paper's central data structure (§3.2).

A spec describes one build configuration of a package: its version,
compiler (with version), named boolean variants, target architecture, and
a dependency map to further specs.  A spec may be *abstract* (any of these
unconstrained — describing a family of builds) or *concrete* (every
parameter fixed, every dependency resolved — describing exactly one
build).  Concretization (:mod:`repro.core`) turns the former into the
latter.

Two comparison semantics matter everywhere (DESIGN.md §5):

* ``a.satisfies(b)`` — *compatibility*: could one build satisfy both ``a``
  and ``b``?  Used for ``when=`` predicates evaluated against
  partially-concrete specs during normalization.
* ``a.satisfies(b, strict=True)`` — *containment*: is every build matching
  ``a`` also matched by ``b``?  Used to verify a concrete result honors
  the user's abstract request.

``a.constrain(b)`` intersects ``b``'s constraints into ``a`` and raises an
:class:`~repro.spec.errors.UnsatisfiableSpecError` subclass naming the
conflicting parameter kind when the intersection is empty.
"""

import hashlib
import weakref

from repro.spec import errors as err
from repro.util.lang import key_ordering
from repro.util.naming import validate_name
from repro.version import VersionList, any_version, ver

#: every dependency type an edge may carry: needed to *build* the
#: dependent (compilers, cmake), needed at *link* time (ABI — part of
#: the runtime identity), needed at *run* time (interpreters, loaders)
ALL_DEPTYPES = ("build", "link", "run")

#: what a bare ``depends_on`` (and a user ``^`` edge) means — Spack's
#: historical default: most dependencies are headers + libraries
DEFAULT_DEPTYPES = ("build", "link")

#: the edge types that contribute to :meth:`Spec.runtime_hash` — the
#: sub-DAG a built binary actually carries into production
RUNTIME_DEPTYPES = frozenset(("link", "run"))


def canonical_deptype(deptype):
    """Normalize a deptype argument to a frozenset of valid type names.

    Accepts ``None``/``"all"`` (every type), a single type name, or an
    iterable of names; raises :class:`~repro.spec.errors.SpecError` for
    anything outside :data:`ALL_DEPTYPES`.
    """
    if deptype is None or deptype == "all":
        return frozenset(ALL_DEPTYPES)
    if isinstance(deptype, str):
        deptype = (deptype,)
    result = frozenset(deptype)
    invalid = result - frozenset(ALL_DEPTYPES)
    if invalid:
        raise err.SpecError(
            "Invalid dependency type(s): %s (must be among %s)"
            % (", ".join(sorted(invalid)), ", ".join(ALL_DEPTYPES))
        )
    if not result:
        raise err.SpecError("Dependency type set cannot be empty")
    return result


def deptype_chars(deptypes):
    """Compact ``blr``-style rendering of a deptype set (graph output)."""
    return "".join(t[0] for t in ALL_DEPTYPES if t in deptypes)


@key_ordering
class CompilerSpec:
    """A compiler constraint: toolchain name plus a version constraint.

    ``%gcc`` → any gcc; ``%[email protected]`` → that version family.  A compiler
    name refers to the full toolchain (C, C++, Fortran), per §3.2.3.
    """

    __slots__ = ("name", "versions")

    def __init__(self, name, versions=None):
        if isinstance(name, CompilerSpec):
            self.name = name.name
            self.versions = name.versions.copy()
            return
        if "@" in name:
            name, _, vstring = name.partition("@")
            if versions is not None:
                raise err.SpecError("CompilerSpec given both @ string and versions")
            versions = vstring
        self.name = validate_name(name)
        if versions is None:
            self.versions = any_version()
        elif isinstance(versions, VersionList):
            self.versions = versions.copy()
        else:
            self.versions = VersionList(ver(versions))

    @property
    def concrete(self):
        return self.versions.concrete is not None

    @property
    def version(self):
        """The single concrete version (only valid on concrete compiler specs)."""
        v = self.versions.concrete
        if v is None:
            raise err.SpecError("CompilerSpec %s is not concrete" % self)
        return v

    def satisfies(self, other, strict=False):
        other = CompilerSpec(other) if isinstance(other, str) else other
        if self.name != other.name:
            return False
        return self.versions.satisfies(other.versions, strict=strict)

    def constrain(self, other):
        """Intersect ``other`` into self; return True if changed."""
        other = CompilerSpec(other) if isinstance(other, str) else other
        if self.name != other.name:
            raise err.UnsatisfiableCompilerSpecError(self, other)
        if not self.versions.overlaps(other.versions):
            raise err.UnsatisfiableCompilerSpecError(self, other)
        return self.versions.intersect(other.versions)

    def copy(self):
        return CompilerSpec(self.name, self.versions.copy())

    def _cmp_key(self):
        return (self.name, tuple(str(c) for c in self.versions))

    def __str__(self):
        if self.versions.universal:
            return self.name
        return "%s@%s" % (self.name, self.versions)

    def __repr__(self):
        return "CompilerSpec(%r)" % str(self)


class VariantMap(dict):
    """Named boolean build options on one spec node (§3.2.3, "Variants").

    The map may be *owned* by a Spec node: mutating an owned map
    invalidates the owner's cached reprs/hashes (see
    :meth:`Spec.invalidate_caches`), so direct ``spec.variants[x] = True``
    writes cannot leave stale cached state behind.
    """

    def __init__(self, owner=None):
        super().__init__()
        self._owner_ref = weakref.ref(owner) if owner is not None else None

    def _touch(self):
        ref = self._owner_ref
        if ref is not None:
            owner = ref()
            if owner is not None:
                owner.invalidate_caches()

    def __setitem__(self, name, value):
        super().__setitem__(name, value)
        self._touch()

    def __delitem__(self, name):
        super().__delitem__(name)
        self._touch()

    def update(self, *args, **kwargs):
        super().update(*args, **kwargs)
        self._touch()

    def pop(self, *args):
        result = super().pop(*args)
        self._touch()
        return result

    def clear(self):
        super().clear()
        self._touch()

    def setdefault(self, name, default=None):
        result = super().setdefault(name, default)
        self._touch()
        return result

    def satisfies(self, other, strict=False):
        for name, value in other.items():
            if name in self:
                if self[name] != value:
                    return False
            elif strict:
                return False
        return True

    def constrain(self, other):
        changed = False
        for name, value in other.items():
            if name in self:
                if self[name] != value:
                    raise err.UnsatisfiableVariantSpecError(
                        "%s%s" % ("+" if self[name] else "~", name),
                        "%s%s" % ("+" if value else "~", name),
                    )
            else:
                self[name] = value
                changed = True
        return changed

    def copy(self):
        new = VariantMap()
        new.update(self)
        return new

    def __str__(self):
        return "".join(
            ("+%s" % name) if value else ("~%s" % name)
            for name, value in sorted(self.items())
        )


class _DependencyMap(dict):
    """Dependency edges of one Spec node, keyed by package name.

    Behaves exactly like the plain dict it replaces, with two additions:

    * inserting an edge registers a *weak* back-reference from the child
      to its new parent.  Those back-references are what let
      :meth:`Spec.invalidate_caches` propagate upward — without them,
      mutating a dependency shared by a concrete DAG would leave every
      ancestor serving a stale cached ``_hash`` with ``_concrete`` still
      True.  Removing an edge invalidates the former parent's caches
      (its DAG just changed) and drops the back-reference.
    * every edge carries a **dependency type** set (build/link/run).  A
      plain ``map[name] = dep`` write keeps an existing edge's types, or
      defaults a new edge to :data:`DEFAULT_DEPTYPES`; ``set_edge``
      inserts with explicit types; re-typing an edge invalidates the
      owner's caches the same way reshaping the DAG does, because the
      types participate in both DAG hashes.
    """

    __slots__ = ("_owner_ref", "_edge_types")

    def __init__(self, owner):
        super().__init__()
        self._owner_ref = weakref.ref(owner)
        #: name -> frozenset of dependency types for that edge
        self._edge_types = {}

    def __setitem__(self, name, dep):
        super().__setitem__(name, dep)
        self._edge_types.setdefault(name, frozenset(DEFAULT_DEPTYPES))
        owner = self._owner_ref()
        if owner is not None:
            if isinstance(dep, Spec):
                dep._register_parent(owner)
            # the owner's DAG just changed shape; its cached DAG repr,
            # hash, and memo tables are stale (ancestors' too)
            owner.invalidate_caches()

    def __delitem__(self, name):
        dep = self.get(name)
        super().__delitem__(name)
        self._edge_types.pop(name, None)
        owner = self._owner_ref()
        if owner is not None:
            if isinstance(dep, Spec):
                dep._dependents.pop(id(owner), None)
            owner.invalidate_caches()

    # -- typed-edge API -----------------------------------------------------
    def set_edge(self, name, dep, deptypes):
        """Insert (or repoint) an edge with explicit dependency types."""
        self._edge_types[name] = canonical_deptype(deptypes)
        self[name] = dep

    def deptypes(self, name):
        """The dependency-type set of the edge to ``name``."""
        return self._edge_types.get(name, frozenset(DEFAULT_DEPTYPES))

    def set_deptypes(self, name, deptypes):
        """Re-type an existing edge; returns True if the types changed."""
        deptypes = canonical_deptype(deptypes)
        if self._edge_types.get(name) == deptypes:
            return False
        self._edge_types[name] = deptypes
        owner = self._owner_ref()
        if owner is not None:
            # edge types are hashed state: ancestors' cached DAG reprs,
            # dag_hash, and runtime_hash are all stale now
            owner.invalidate_caches()
        return True

    def add_deptypes(self, name, deptypes):
        """Union ``deptypes`` into an edge; returns True if it changed."""
        merged = self.deptypes(name) | canonical_deptype(deptypes)
        return self.set_deptypes(name, merged)


class Spec:
    """A node in (and handle to) a spec DAG.

    Construct from a spec expression (``Spec("mpileaks@1.2 %gcc ^mpich")``),
    from another Spec (copy), or programmatically via keywords.

    Attributes
    ----------
    name : str or None
        Package name; None for anonymous constraint specs (``when='%gcc'``).
    versions : VersionList
        Version constraint; the universal list when unconstrained.
    compiler : CompilerSpec or None
    variants : VariantMap
    architecture : str or None
    dependencies : dict[str, Spec]
        Direct dependency edges, keyed by package name.  A DAG never
        contains two nodes with the same name (§3.2.1), so names are
        unique identifiers within one spec.
    external : str or None
        Install prefix of a pre-existing (non-built) installation; set by
        the concretizer from ``packages`` config (used e.g. for vendor MPI
        in the ARES study, §4.4).
    provided_virtuals : set[str]
        Virtual names this node was chosen to provide (stamped by the
        concretizer when it swaps a provider in for a virtual node).
    """

    def __init__(
        self,
        spec_like=None,
        *,
        name=None,
        versions=None,
        compiler=None,
        variants=None,
        architecture=None,
        dependencies=None,
    ):
        if isinstance(spec_like, Spec):
            self._init_empty()
            self._dup(spec_like)
            return
        if isinstance(spec_like, str):
            from repro.spec.parser import parse_specs

            specs = parse_specs(spec_like)
            if len(specs) != 1:
                raise err.SpecParseError(
                    "Expected exactly one spec, got %d from %r"
                    % (len(specs), spec_like)
                )
            self._init_empty()
            self._dup(specs[0])
            return
        if spec_like is not None:
            raise TypeError("Cannot construct Spec from %r" % (spec_like,))

        self._init_empty()
        if name is not None:
            self.name = validate_name(name)
        if versions is not None:
            vl = ver(versions)
            self.versions = vl if isinstance(vl, VersionList) else VersionList([vl])
        if compiler is not None:
            self.compiler = (
                compiler if isinstance(compiler, CompilerSpec) else CompilerSpec(compiler)
            )
        if variants:
            self.variants.update(variants)
        if architecture is not None:
            self.architecture = architecture
        for dep in dependencies or ():
            self._add_dependency(dep if isinstance(dep, Spec) else Spec(dep))

    def _init_empty(self):
        #: id(parent) -> weakref to parents holding an edge to this node;
        #: maintained by _DependencyMap, consumed by invalidate_caches().
        #: Set first: the parameter setters below call invalidate_caches.
        self._dependents = {}
        self._concrete = False
        self._normal = False
        self._hash = None
        self._rhash = None
        self._nrepr = None
        self._dkey = None
        self._smemo = {}
        self._p_name = None
        self._p_versions = any_version()
        self._p_compiler = None
        self._p_variants = VariantMap(owner=self)
        self._p_architecture = None
        self._p_external = None
        self.dependencies = _DependencyMap(self)
        self.provided_virtuals = set()
        self.namespace = None

    # -- cached-state parameter properties -----------------------------------
    # Node parameters are properties so that *any* assignment — including
    # direct writes from tests or package code — invalidates the cached
    # node/DAG reprs, hash, and memo tables on this node and its ancestors.
    # Mutation discipline therefore has a single choke point instead of
    # being scattered across every caller.
    def _make_param(attr):  # noqa: N805 - class-body helper, deleted below
        private = "_p_" + attr

        def fget(self):
            return getattr(self, private)

        def fset(self, value):
            setattr(self, private, value)
            self.invalidate_caches()

        return property(fget, fset)

    name = _make_param("name")
    versions = _make_param("versions")
    compiler = _make_param("compiler")
    architecture = _make_param("architecture")
    external = _make_param("external")
    del _make_param

    @property
    def variants(self):
        return self._p_variants

    @variants.setter
    def variants(self, value):
        owned = VariantMap(owner=self)
        dict.update(owned, value or {})
        self._p_variants = owned
        self.invalidate_caches()

    def _dup_node(self, other):
        """Copy ``other``'s node-level fields (everything but edges)."""
        self.name = other.name
        self.versions = other.versions.copy()
        self.compiler = other.compiler.copy() if other.compiler else None
        self.variants = other.variants.copy()
        self.architecture = other.architecture
        self.external = other.external
        self.provided_virtuals = set(other.provided_virtuals)
        self.namespace = other.namespace
        self._concrete = other._concrete
        self._normal = other._normal
        self._hash = other._hash
        self._rhash = other._rhash

    def _dup(self, other, deps=True):
        """Become a copy of ``other`` (used by copy() and __init__).

        The copy is DAG-aware: shared nodes in ``other`` (a diamond like
        mpileaks→callpath→dyninst / mpileaks→dyninst) stay shared in the
        copy, preserving the one-node-per-name invariant structurally.
        """
        self._dup_node(other)
        self.dependencies = _DependencyMap(self)
        if deps:
            memo = {other.name or id(other): self}
            other._copy_deps_into(self, memo)
            # edge insertion invalidated the fresh nodes' caches; restore
            # the stamped concreteness/hash state from the originals
            originals = {n.name or id(n): n for n in other.traverse()}
            for key, copied in memo.items():
                source = originals.get(key)
                if source is not None:
                    copied._concrete = source._concrete
                    copied._normal = source._normal
                    copied._hash = source._hash
                    copied._rhash = source._rhash
        else:
            self._concrete = False
            self._normal = False
            self._hash = None
            self._rhash = None

    def _copy_deps_into(self, new, memo):
        for name, dep in self.dependencies.items():
            key = dep.name or id(dep)
            child = memo.get(key)
            if child is None:
                child = Spec()
                child._dup_node(dep)
                memo[key] = child
                dep._copy_deps_into(child, memo)
            new.dependencies.set_edge(name, child, self.dependencies.deptypes(name))

    # -- construction helpers ---------------------------------------------
    def _add_dependency(self, dep_spec, deptypes=None):
        if dep_spec.name is None:
            raise err.SpecParseError("Dependency specs must be named")
        if dep_spec.name == self.name:
            # traversal dedups nodes by name, so a same-named dependency
            # would be invisible to rendering/hashing — reject it here
            raise err.InvalidDependencyError(
                "Package %r cannot depend on itself" % self.name
            )
        if dep_spec.name in self.dependencies:
            raise err.DuplicateDependencyError(
                "Cannot depend on %r twice" % dep_spec.name
            )
        if deptypes is None:
            self.dependencies[dep_spec.name] = dep_spec
        else:
            self.dependencies.set_edge(dep_spec.name, dep_spec, deptypes)
        self.invalidate_caches()

    def _register_parent(self, parent):
        """Record a weak back-reference to a parent holding an edge here."""
        key = id(parent)
        if key not in self._dependents:
            # the callback prunes the entry when the parent is collected,
            # so a recycled id() can never alias a dead parent
            self._dependents[key] = weakref.ref(
                parent, lambda _ref, s=self, k=key: s._dependents.pop(k, None)
            )

    def _reset_caches(self):
        self._hash = None
        self._rhash = None
        self._concrete = False
        self._normal = False
        self._nrepr = None
        self._dkey = None
        if self._smemo:
            self._smemo = {}

    def invalidate_caches(self):
        """Drop cached hash/reprs/memos here *and on every ancestor*.

        A concrete DAG caches ``_hash``, its canonical node/DAG reprs,
        and ``satisfies``/``intersects`` memo entries per node; mutating
        a shared child (``constrain``, ``_add_dependency``, any parameter
        assignment) changes every ancestor's DAG state too, so
        invalidation walks the parent back-references — otherwise
        ancestors keep serving stale cached state with ``_concrete``
        still True.
        """
        if not self._dependents:
            self._reset_caches()
            return
        stack = [self]
        seen = set()
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            node._reset_caches()
            for ref in list(node._dependents.values()):
                parent = ref()
                if parent is not None:
                    stack.append(parent)

    def copy(self, deps=True):
        new = Spec()
        new._dup(self, deps=deps)
        return new

    # -- predicates ---------------------------------------------------------
    @property
    def anonymous(self):
        return self.name is None

    @property
    def concrete(self):
        """True when every parameter on every node is fixed.

        The concretizer stamps ``_concrete`` after validation; for
        hand-built specs this falls back to a structural check (which
        cannot validate variant *completeness* without the package file).
        """
        if self._concrete:
            return True
        return (
            self.name is not None
            and self.versions.concrete is not None
            and self.compiler is not None
            and self.compiler.concrete
            and self.architecture is not None
            and all(d.concrete for d in self.dependencies.values())
        )

    @property
    def version(self):
        v = self.versions.concrete
        if v is None:
            raise err.SpecError("Spec %s has no concrete version" % self)
        return v

    @property
    def prefix(self):
        """Install prefix of this node (Figure 1's ``spec['callpath'].prefix``).

        Stamped by the installer/store before a build; external packages
        use their configured path.
        """
        if self.external:
            return self.external
        stamped = getattr(self, "_prefix", None)
        if stamped is None:
            raise err.SpecError(
                "Spec %s has no install prefix (not attached to a store)" % self.name
            )
        return stamped

    @prefix.setter
    def prefix(self, value):
        self._prefix = value

    # -- traversal ----------------------------------------------------------
    def traverse(self, order="pre", root=True, depth=False, deptype=None,
                 _visited=None, _d=0):
        """Iterate over the DAG's unique nodes (by name).

        ``order``: 'pre' (parents first) or 'post' (children first).
        ``depth``: yield ``(depth, spec)`` tuples instead of specs.
        ``deptype``: only follow edges whose type set overlaps this
        (a name, an iterable of names, or None for every edge) — e.g.
        ``traverse(deptype=("link", "run"))`` walks the runtime closure.
        """
        if deptype is not None and not isinstance(deptype, frozenset):
            deptype = canonical_deptype(deptype)
        if _visited is None:
            _visited = set()
        key = self.name or id(self)
        if key in _visited:
            return
        _visited.add(key)

        def emit():
            return (_d, self) if depth else self

        if order == "pre" and root:
            yield emit()
        for name in sorted(self.dependencies):
            if deptype is not None and not (
                self.dependencies.deptypes(name) & deptype
            ):
                continue
            yield from self.dependencies[name].traverse(
                order=order, root=True, depth=depth, deptype=deptype,
                _visited=_visited, _d=_d + 1
            )
        if order == "post" and root:
            yield emit()

    def link_run_subdag(self):
        """A copy of this DAG restricted to link/run edges.

        This is the sub-DAG :meth:`runtime_hash` is computed over — what
        a built binary of this spec actually carries at run time.  Nodes
        reachable only through build-type edges (compilers, cmake) are
        absent; surviving edges keep only their runtime-relevant types.
        """
        memo = {}

        def build(node):
            key = node.name or id(node)
            copied = memo.get(key)
            if copied is not None:
                return copied
            copied = Spec()
            copied._dup_node(node)
            memo[key] = copied
            for name in sorted(node.dependencies):
                runtime = node.dependencies.deptypes(name) & RUNTIME_DEPTYPES
                if not runtime:
                    continue
                child = build(node.dependencies[name])
                copied.dependencies.set_edge(name, child, runtime)
            return copied

        return build(self)

    def flat_dependencies(self):
        """All nodes below the root, keyed by name (copies not made)."""
        return {s.name: s for s in self.traverse(root=False)}

    def __contains__(self, spec_like):
        """True if some node in this DAG satisfies ``spec_like``.

        Enables idioms like ``'mpich' in spec`` and
        ``Spec('callpath@1.2') in spec`` from package code.
        """
        other = spec_like if isinstance(spec_like, Spec) else Spec(spec_like)
        return any(
            node.satisfies(other) for node in self.traverse()
            if other.name is None or node.name == other.name
        )

    def __getitem__(self, name):
        """Look up a dependency (or self) by package name or virtual name.

        Packages use ``spec['callpath'].prefix`` in install() (Figure 1).
        Virtual lookups (``spec['mpi']``) resolve through
        ``provided_virtuals`` stamps on concretized nodes.
        """
        for node in self.traverse():
            if node.name == name or name in node.provided_virtuals:
                return node
        raise KeyError("No node named %r in spec %s" % (name, self))

    # -- satisfies / constrain ----------------------------------------------
    def satisfies_node(self, other, strict=False):
        """Node-only satisfaction: ignore dependency structure."""
        if other.name is not None and self.name != other.name:
            return False
        if not self.versions.satisfies(other.versions, strict=strict):
            return False
        if other.compiler is not None:
            if self.compiler is None:
                if strict:
                    return False
            elif not self.compiler.satisfies(other.compiler, strict=strict):
                return False
        if not self.variants.satisfies(other.variants, strict=strict):
            return False
        if other.architecture is not None:
            if self.architecture is None:
                if strict:
                    return False
            elif self.architecture != other.architecture:
                return False
        return True

    #: per-node memo tables stop growing past this many entries; cleared
    #: wholesale rather than evicted (they refill in one concretizer pass)
    _MEMO_LIMIT = 512

    def satisfies(self, other, strict=False):
        """See the module docstring for the two semantics.

        ``other`` may be a Spec or a spec string.  Dependency constraints
        in ``other`` are matched against *any* node of this DAG with the
        same name (names are unique per DAG).

        Outcomes are memoized per node: the memo is keyed by ``other``'s
        canonical DAG tuple and cleared by :meth:`invalidate_caches`
        whenever this spec (or any node below it) mutates, so repeated
        ``when=`` predicate checks during the concretizer's fixed-point
        iterations cost one dict lookup.
        """
        other = other if isinstance(other, Spec) else Spec(other)
        memo = self._smemo
        key = ("sat", other._dag_key(), strict)
        hit = memo.get(key)
        if hit is not None:
            return hit[0]
        result = self._satisfies_uncached(other, strict)
        if len(memo) < self._MEMO_LIMIT:
            memo[key] = (result,)
        return result

    def _satisfies_uncached(self, other, strict):
        if not self.satisfies_node(other, strict=strict):
            return False
        if not other.dependencies:
            return True
        mine = {s.name: s for s in self.traverse()}
        for name, odep in other.flat_dependencies().items():
            sdep = mine.get(name)
            if sdep is None:
                if strict:
                    return False
                continue
            if not sdep.satisfies_node(odep, strict=strict):
                return False
        return True

    def constrain(self, other, deps=True):
        """Intersect ``other``'s constraints into this spec.

        Returns True if anything changed; raises an UnsatisfiableSpecError
        subclass if the constraints cannot be merged.
        """
        other = other if isinstance(other, Spec) else Spec(other)
        if other.name is not None and self.name is not None and self.name != other.name:
            raise err.UnsatisfiableSpecNameError(self.name, other.name)

        changed = False
        if self.name is None and other.name is not None:
            self.name = other.name
            changed = True
        if not self.versions.overlaps(other.versions):
            raise err.UnsatisfiableVersionSpecError(self.versions, other.versions)
        changed |= self.versions.intersect(other.versions)
        if other.compiler is not None:
            if self.compiler is None:
                self.compiler = other.compiler.copy()
                changed = True
            else:
                changed |= self.compiler.constrain(other.compiler)
        changed |= self.variants.constrain(other.variants)
        if other.architecture is not None:
            if self.architecture is None:
                self.architecture = other.architecture
                changed = True
            elif self.architecture != other.architecture:
                raise err.UnsatisfiableArchitectureSpecError(
                    self.architecture, other.architecture
                )
        if other.external is not None:
            if self.external is None:
                self.external = other.external
                changed = True
        if deps and other.dependencies:
            changed |= self._constrain_dependencies(other)
        if changed:
            self.invalidate_caches()
        return changed

    def _constrain_dependencies(self, other):
        changed = False
        for name, odep in other.dependencies.items():
            if name in self.dependencies:
                changed |= self.dependencies[name].constrain(odep)
                changed |= self.dependencies.add_deptypes(
                    name, other.dependencies.deptypes(name))
            else:
                self.dependencies.set_edge(
                    name, odep.copy(), other.dependencies.deptypes(name))
                changed = True
        return changed

    def intersects(self, other):
        """True if a build could satisfy both specs (symmetric overlap).

        Memoized like :meth:`satisfies` — the trial constrain on a copy
        is one of the concretizer's hottest operations.
        """
        other = other if isinstance(other, Spec) else Spec(other)
        memo = self._smemo
        key = ("int", other._dag_key())
        hit = memo.get(key)
        if hit is not None:
            return hit[0]
        try:
            self.copy().constrain(other)
            result = True
        except err.UnsatisfiableSpecError:
            result = False
        if len(memo) < self._MEMO_LIMIT:
            memo[key] = (result,)
        return result

    # -- hashing -------------------------------------------------------------
    def node_repr(self):
        """Canonical tuple describing this node, without dependencies.

        Cached until the next mutation: every parameter write goes
        through the property setters (or the owned VariantMap), both of
        which call :meth:`invalidate_caches`.
        """
        nrepr = self._nrepr
        if nrepr is None:
            nrepr = self._nrepr = (
                self.name or "",
                str(self.versions),
                str(self.compiler) if self.compiler else "",
                tuple(sorted(self.variants.items())),
                self.architecture or "",
                self.external or "",
            )
        return nrepr

    def dag_hash(self, length=None):
        """Stable content hash of the full DAG (paper §3.4.2's SHA hash).

        Every edge contributes its dependency types, so re-typing an
        edge changes the hash exactly like reshaping the DAG would.
        Cached once the spec is marked concrete; abstract specs recompute
        since they may still be mutated.
        """
        if self._hash is None or not self._concrete:
            digest = hashlib.sha1()
            self._hash_into(digest, {})
            h = digest.hexdigest()
            if not self._concrete:
                return h[:length] if length else h
            self._hash = h
        return self._hash[:length] if length else self._hash

    def _visit_key(self, visited):
        """Deterministic traversal key: the name, or — for anonymous
        nodes — a stable per-traversal ordinal.  ``id(self)`` is NOT
        usable here: it differs across processes, and two anonymous
        nodes must hash by their *position* in the walk, not by where
        the allocator happened to put them."""
        key = self.name if self.name is not None else ("<anon>", id(self))
        ordinal = visited.get(key)
        if ordinal is None:
            visited[key] = len(visited)
            return None  # first visit
        return self.name if self.name is not None else "<anon#%d>" % ordinal

    def _hash_into(self, digest, visited):
        if self._visit_key(visited) is not None:
            return
        digest.update(repr(self.node_repr()).encode())
        for name in sorted(self.dependencies):
            types = ",".join(sorted(self.dependencies.deptypes(name)))
            digest.update(("^%s[%s]" % (name, types)).encode())
            self.dependencies[name]._hash_into(digest, visited)

    def runtime_hash(self, length=None):
        """Content hash of only the link/run sub-DAG (the splice key).

        Two concrete specs with equal runtime hashes carry the same
        binaries at run time even if their *build-only* sub-DAGs differ
        (a newer cmake, a different compiler-support tool) — which is
        exactly when the build cache may splice one's prefix in for the
        other instead of rebuilding ("Bridging the Gap Between Binary
        and Source Based Package Management in Spack", PAPERS.md).
        Invalidated alongside ``dag_hash`` by the ancestor back-refs.
        """
        if self._rhash is None or not self._concrete:
            digest = hashlib.sha1()
            self._runtime_hash_into(digest, {})
            h = digest.hexdigest()
            if not self._concrete:
                return h[:length] if length else h
            self._rhash = h
        return self._rhash[:length] if length else self._rhash

    def _runtime_hash_into(self, digest, visited):
        if self._visit_key(visited) is not None:
            return
        digest.update(repr(self.node_repr()).encode())
        for name in sorted(self.dependencies):
            runtime = self.dependencies.deptypes(name) & RUNTIME_DEPTYPES
            if not runtime:
                continue  # build-only edges are invisible at run time
            digest.update(("^%s[%s]" % (name, ",".join(sorted(runtime)))).encode())
            self.dependencies[name]._runtime_hash_into(digest, visited)

    # -- equality --------------------------------------------------------------
    def eq_node(self, other):
        return self.node_repr() == other.node_repr()

    def _dag_repr(self, visited):
        marker = self._visit_key(visited)
        if marker is not None:
            return (marker,)
        return self.node_repr() + tuple(
            (name, tuple(sorted(self.dependencies.deptypes(name))),
             self.dependencies[name]._dag_repr(visited))
            for name in sorted(self.dependencies)
        )

    def _dag_key(self):
        """The full-DAG canonical tuple, cached until the next mutation.

        Child mutations propagate here through the dependent
        back-references, so a cached value is always current.  This is
        the comparison/memo key for ``__eq__``/``__hash__`` and the
        satisfies/intersects memo tables.
        """
        dkey = self._dkey
        if dkey is None:
            dkey = self._dkey = self._dag_repr({})
        return dkey

    def __eq__(self, other):
        if self is other:
            return True
        if not isinstance(other, Spec):
            return NotImplemented
        return self._dag_key() == other._dag_key()

    def __ne__(self, other):
        return not self == other

    def __hash__(self):
        return hash(self._dag_key())

    def __lt__(self, other):
        if not isinstance(other, Spec):
            return NotImplemented
        return self._dag_key() < other._dag_key()

    # -- rendering ---------------------------------------------------------------
    def node_str(self):
        """Canonical text for this node alone (no dependencies)."""
        parts = [self.name or ""]
        if not self.versions.universal:
            parts.append("@%s" % self.versions)
        if self.compiler is not None:
            parts.append("%%%s" % self.compiler)
        if self.variants:
            parts.append(str(self.variants))
        if self.architecture is not None:
            parts.append("=%s" % self.architecture)
        return "".join(parts)

    def __str__(self):
        """Canonical, re-parseable rendering: root node, then each unique
        dependency node flattened with ``^`` in name order (as the original
        prints specs — edge structure is re-derived by normalization)."""
        parts = [self.node_str()]
        for name in sorted(self.flat_dependencies()):
            parts.append("^%s" % self.flat_dependencies()[name].node_str())
        return " ".join(parts)

    def __repr__(self):
        return "Spec(%r)" % str(self)

    def format(self, fmt, **extra):
        """Expand ``${...}`` tokens for view projections and layouts (§4.3.1).

        Supported tokens: PACKAGE, VERSION, COMPILER, COMPILERNAME,
        COMPILERVER, OPTIONS, ARCHITECTURE, HASH (or HASH:n), and
        <VIRTUAL>NAME / <VIRTUAL>VER for any virtual provided by a
        dependency (e.g. MPINAME, MPIVER).  Extra keyword tokens override.
        """
        import re as _re

        def lookup(token):
            if token in extra:
                return str(extra[token])
            if token == "PACKAGE":
                return self.name or ""
            if token == "VERSION":
                v = self.versions.concrete
                return str(v) if v else str(self.versions)
            if token == "COMPILER":
                return str(self.compiler) if self.compiler else ""
            if token == "COMPILERNAME":
                return self.compiler.name if self.compiler else ""
            if token == "COMPILERVER":
                return str(self.compiler.versions) if self.compiler else ""
            if token == "OPTIONS":
                return str(self.variants)
            if token == "ARCHITECTURE":
                return self.architecture or ""
            if token == "HASH" or token.startswith("HASH:"):
                length = int(token.split(":")[1]) if ":" in token else None
                return self.dag_hash(length)
            if token.endswith("NAME") or token.endswith("VER"):
                virtual = token[:-4] if token.endswith("NAME") else token[:-3]
                virtual = virtual.lower()
                for node in self.traverse():
                    if virtual in node.provided_virtuals:
                        if token.endswith("NAME"):
                            return node.name
                        v = node.versions.concrete
                        return str(v) if v else str(node.versions)
                return ""
            raise err.SpecError("Unknown format token ${%s}" % token)

        return _re.sub(r"\$\{([A-Za-z0-9:_]+)\}", lambda m: lookup(m.group(1)), fmt)

    # -- serialization ---------------------------------------------------------------
    def to_dict(self):
        """JSON-able representation of the whole DAG.

        Nodes are listed once each (they are unique by name) with their
        parameters; edges are recorded as name lists — this is the format
        of the provenance ``spec.json`` files the installer writes
        (§3.4.3) and of the install database.
        """
        nodes = [node.to_node_dict() for node in self.traverse()]
        return {"root": self.name, "nodes": nodes}

    def to_node_dict(self):
        """JSON-able representation of this node alone (edges as names).

        One entry of :meth:`to_dict`'s ``nodes`` list; also the unit the
        concretization-cache equivalence tests compare byte-for-byte.
        """
        return {
            "name": self.name,
            "versions": str(self.versions),
            "compiler": str(self.compiler) if self.compiler else None,
            "variants": dict(self.variants),
            "architecture": self.architecture,
            "external": self.external,
            "provided_virtuals": sorted(self.provided_virtuals),
            "dependencies": {
                name: sorted(self.dependencies.deptypes(name))
                for name in sorted(self.dependencies)
            },
            "concrete": bool(self._concrete),
        }

    @classmethod
    def from_dict(cls, data):
        """Rebuild a spec DAG written by :meth:`to_dict` (sharing preserved)."""
        built = {}
        node_data = {nd["name"]: nd for nd in data["nodes"]}

        def build(name):
            if name in built:
                return built[name]
            nd = node_data[name]
            node = cls()
            node.name = nd["name"]
            node.versions = VersionList(nd["versions"])
            node.compiler = CompilerSpec(nd["compiler"]) if nd["compiler"] else None
            node.variants.update(nd["variants"])
            node.architecture = nd["architecture"]
            node.external = nd["external"]
            node.provided_virtuals = set(nd["provided_virtuals"])
            built[name] = node
            deps = nd["dependencies"]
            if isinstance(deps, dict):
                for dep_name in sorted(deps):
                    node.dependencies.set_edge(
                        dep_name, build(dep_name), deps[dep_name])
            else:  # legacy list form: edges default to ("build", "link")
                for dep_name in deps:
                    node.dependencies[dep_name] = build(dep_name)
            node._concrete = bool(nd.get("concrete"))
            node._normal = node._concrete
            return node

        return build(data["root"])

    # -- misc ---------------------------------------------------------------------
    def tree(self, indent=2):
        """Indented multi-line rendering of the DAG (CLI ``spec`` output)."""
        lines = []
        for d, node in self.traverse(depth=True):
            lines.append("%s%s" % (" " * (indent * d), node.node_str()))
        return "\n".join(lines)
