"""ASCII and DOT renderings of spec DAGs (Figures 2, 7, 9, 13).

``graph_ascii`` prints an indented tree with back-edges annotated;
``graph_dot`` emits Graphviz for the benchmark harnesses that regenerate
the paper's DAG figures.
"""

from repro.spec.spec import Spec


def graph_ascii(spec, show_params=True):
    """Indented-tree rendering; repeated nodes are marked with ``*``.

    One version of each package appears per DAG (§3.2.1), so a node seen
    again is the same build — the ``*`` marks a shared sub-DAG edge.
    """
    lines = []
    seen = set()

    def walk(node, depth):
        label = node.node_str() if show_params else (node.name or "?")
        if node.name in seen:
            lines.append("%s%s *" % ("  " * depth, label))
            return
        seen.add(node.name)
        lines.append("%s%s" % ("  " * depth, label))
        for name in sorted(node.dependencies):
            walk(node.dependencies[name], depth + 1)

    walk(spec, 0)
    return "\n".join(lines)


def graph_dot(spec, name="spec", node_attrs=None):
    """Graphviz DOT text for a spec DAG.

    ``node_attrs`` may be a callable ``spec_node -> dict`` adding per-node
    attributes (Figure 13 colors nodes by package category this way).
    """
    node_attrs = node_attrs or (lambda node: {})
    lines = ["digraph \"%s\" {" % name, "  rankdir=TB;"]
    emitted = set()
    edges = set()

    def node_id(node):
        return '"%s"' % (node.name or "anonymous")

    def walk(node):
        nid = node_id(node)
        if node.name not in emitted:
            emitted.add(node.name)
            attrs = {"label": node.name or "?"}
            attrs.update(node_attrs(node))
            attr_text = ", ".join('%s="%s"' % kv for kv in sorted(attrs.items()))
            lines.append("  %s [%s];" % (nid, attr_text))
        for name in sorted(node.dependencies):
            child = node.dependencies[name]
            edge = (node.name, child.name)
            walk(child)
            if edge not in edges:
                edges.add(edge)
                lines.append("  %s -> %s;" % (nid, node_id(child)))

    walk(spec if isinstance(spec, Spec) else Spec(spec))
    lines.append("}")
    return "\n".join(lines)


def edge_list(spec):
    """Sorted unique ``(parent, child)`` name pairs — handy for tests."""
    edges = set()

    def walk(node):
        for name, child in node.dependencies.items():
            edge = (node.name, child.name)
            if edge not in edges:
                edges.add(edge)
                walk(child)

    walk(spec)
    return sorted(edges)
