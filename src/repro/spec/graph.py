"""ASCII and DOT renderings of spec DAGs (Figures 2, 7, 9, 13).

``graph_ascii`` prints an indented tree with back-edges annotated;
``graph_dot`` emits Graphviz for the benchmark harnesses that regenerate
the paper's DAG figures.  Both understand typed dependency edges:
``show_deptypes`` annotates each edge with its compact ``blr`` type
string (``b``\\uild, ``l``\\ink, ``r``\\un), and ``deptype`` restricts the
rendering to the sub-DAG reachable through edges of those types —
``deptype=("link", "run")`` draws exactly what a built binary carries at
run time.
"""

from repro.spec.spec import Spec, canonical_deptype, deptype_chars


def _edge_filter(deptype):
    """None (keep every edge) or the canonical frozenset to test against."""
    if deptype is None:
        return None
    return canonical_deptype(deptype)


def graph_ascii(spec, show_params=True, show_deptypes=False, deptype=None):
    """Indented-tree rendering; repeated nodes are marked with ``*``.

    One version of each package appears per DAG (§3.2.1), so a node seen
    again is the same build — the ``*`` marks a shared sub-DAG edge.
    With ``show_deptypes`` every dependency line gets an ``[blr]``
    annotation describing the edge it was reached through; ``deptype``
    prunes edges whose type set does not overlap it.
    """
    wanted = _edge_filter(deptype)
    lines = []
    seen = set()

    def annotate(line, parent, name):
        if not show_deptypes or parent is None:
            return line
        chars = deptype_chars(parent.dependencies.deptypes(name))
        return "%s [%s]" % (line, chars or "?")

    def walk(node, depth, parent=None, via=None):
        label = node.node_str() if show_params else (node.name or "?")
        if node.name in seen:
            lines.append(annotate("%s%s *" % ("  " * depth, label), parent, via))
            return
        seen.add(node.name)
        lines.append(annotate("%s%s" % ("  " * depth, label), parent, via))
        for name in sorted(node.dependencies):
            if wanted is not None and not (
                node.dependencies.deptypes(name) & wanted
            ):
                continue
            walk(node.dependencies[name], depth + 1, parent=node, via=name)

    walk(spec, 0)
    return "\n".join(lines)


def graph_dot(spec, name="spec", node_attrs=None, show_deptypes=False,
              deptype=None):
    """Graphviz DOT text for a spec DAG.

    ``node_attrs`` may be a callable ``spec_node -> dict`` adding per-node
    attributes (Figure 13 colors nodes by package category this way).
    ``show_deptypes`` labels each edge with its ``blr`` type string;
    ``deptype`` restricts the graph to edges of those types.
    """
    node_attrs = node_attrs or (lambda node: {})
    wanted = _edge_filter(deptype)
    lines = ["digraph \"%s\" {" % name, "  rankdir=TB;"]
    emitted = set()
    edges = set()

    def node_id(node):
        return '"%s"' % (node.name or "anonymous")

    def walk(node):
        nid = node_id(node)
        if node.name not in emitted:
            emitted.add(node.name)
            attrs = {"label": node.name or "?"}
            attrs.update(node_attrs(node))
            attr_text = ", ".join('%s="%s"' % kv for kv in sorted(attrs.items()))
            lines.append("  %s [%s];" % (nid, attr_text))
        for name in sorted(node.dependencies):
            types = node.dependencies.deptypes(name)
            if wanted is not None and not (types & wanted):
                continue
            child = node.dependencies[name]
            edge = (node.name, child.name)
            walk(child)
            if edge not in edges:
                edges.add(edge)
                if show_deptypes:
                    lines.append(
                        '  %s -> %s [label="%s"];'
                        % (nid, node_id(child), deptype_chars(types))
                    )
                else:
                    lines.append("  %s -> %s;" % (nid, node_id(child)))

    walk(spec if isinstance(spec, Spec) else Spec(spec))
    lines.append("}")
    return "\n".join(lines)


def edge_list(spec, deptypes=False, deptype=None):
    """Sorted unique edge tuples — handy for tests.

    ``(parent, child)`` name pairs by default; with ``deptypes=True``,
    ``(parent, child, "blr")`` triples carrying each edge's type string.
    ``deptype`` restricts the walk to edges of those types.
    """
    wanted = _edge_filter(deptype)
    edges = set()

    def walk(node):
        for name, child in node.dependencies.items():
            types = node.dependencies.deptypes(name)
            if wanted is not None and not (types & wanted):
                continue
            if deptypes:
                edge = (node.name, child.name, deptype_chars(types))
            else:
                edge = (node.name, child.name)
            if edge not in edges:
                edges.add(edge)
                walk(child)

    walk(spec)
    return sorted(edges)
