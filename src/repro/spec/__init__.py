"""The spec DAG model and the recursive constraint syntax (paper §3.2).

A *spec* is a partially- or fully-constrained description of one build of a
package and all of its dependencies.  This package provides:

* :class:`repro.spec.spec.Spec` — the DAG node/graph type with
  ``satisfies`` / ``constrain`` / ``copy`` / ``traverse`` / ``dag_hash``;
* :mod:`repro.spec.parser` — lexer + recursive-descent parser for the
  EBNF grammar of Figure 3;
* :mod:`repro.spec.explain` — English rendering of a spec's meaning
  (used to regenerate Table 2);
* :mod:`repro.spec.graph` — ASCII DAG drawings (Figures 2, 7, 13).
"""

from repro.spec.spec import CompilerSpec, Spec
from repro.spec.errors import (
    SpecError,
    SpecParseError,
    UnsatisfiableSpecError,
)
from repro.spec.parser import parse_specs

__all__ = [
    "Spec",
    "CompilerSpec",
    "SpecError",
    "SpecParseError",
    "UnsatisfiableSpecError",
    "parse_specs",
]
