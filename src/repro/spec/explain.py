"""Render a spec's meaning in English (regenerates Table 2 of the paper).

Given ``mpileaks@1.1.2 %intel@14.1 +debug`` this produces
"mpileaks package, version 1.1.2, built with Intel compiler version 14.1,
with the 'debug' build option." — the same prose style as the paper's
examples, assembled mechanically from the parsed constraint structure.
"""

from repro.spec.spec import Spec
from repro.version import Version, VersionRange

#: Display names for compilers that appear in the paper's prose.
_COMPILER_DISPLAY = {
    "gcc": "gcc",
    "intel": "Intel compiler",
    "pgi": "PGI compiler",
    "clang": "Clang compiler",
    "xl": "XL compiler",
    "xlc": "XL C compiler",
}

#: Display names for architectures that appear in the paper's prose.
_ARCH_DISPLAY = {
    "bgq": "the Blue Gene/Q platform (BG/Q)",
    "linux-x86_64": "the Linux x86_64 platform",
    "linux-ppc64": "the Linux ppc64 platform",
    "cray_xe6": "the Cray XE6 platform",
}


def _explain_versions(versions):
    if versions.universal:
        return None
    parts = []
    for constraint in versions:
        if isinstance(constraint, Version):
            parts.append("version %s" % constraint)
        elif isinstance(constraint, VersionRange):
            if constraint.lo is not None and constraint.hi is not None:
                parts.append(
                    "any version between %s and %s (inclusive)"
                    % (constraint.lo, constraint.hi)
                )
            elif constraint.lo is not None:
                parts.append("version %s or higher" % constraint.lo)
            else:
                parts.append("version %s or lower" % constraint.hi)
    return " or ".join(parts)


def _explain_compiler(compiler):
    display = _COMPILER_DISPLAY.get(compiler.name, compiler.name)
    if compiler.versions.universal:
        return "built with %s at the default version" % display
    return "built with %s version %s" % (display, compiler.versions)


def _explain_node(spec, is_root):
    clauses = []
    head = "%s package" % spec.name if is_root else spec.name
    vtext = _explain_versions(spec.versions)
    if vtext:
        clauses.append(vtext)
    if spec.compiler is not None:
        clauses.append(_explain_compiler(spec.compiler))
    for name, value in sorted(spec.variants.items()):
        if value:
            clauses.append("with the %r build option" % name)
        else:
            clauses.append("without the %r option" % name)
    if spec.architecture is not None:
        arch = _ARCH_DISPLAY.get(spec.architecture, "the %s platform" % spec.architecture)
        clauses.append("built for %s" % arch)
    if clauses:
        return "%s, %s" % (head, ", ".join(clauses))
    return head


def explain(spec_like):
    """One-sentence English meaning of a spec (Table 2 style)."""
    spec = spec_like if isinstance(spec_like, Spec) else Spec(spec_like)
    if spec.name is None:
        text = "any package, %s" % _explain_node(spec, is_root=False).lstrip(", ")
    else:
        text = _explain_node(spec, is_root=True)
    if not spec.dependencies and spec.versions.universal and spec.compiler is None \
            and not spec.variants and spec.architecture is None:
        return "%s, no constraints." % text
    dep_texts = []
    for name in sorted(spec.dependencies):
        dep = spec.dependencies[name]
        dep_texts.append("linked with %s" % _explain_node(dep, is_root=False))
    if dep_texts:
        text = "%s, %s" % (text, ", ".join(dep_texts))
    return text + "."
