"""Lexer and recursive-descent parser for the spec grammar (Figure 3).

The grammar, from the paper::

    spec         ::= id [ constraints ]
    constraints  ::= { '@' version-list | '+' variant | '-' variant
                     | '~' variant | '%' compiler | '=' architecture }
                     [ dep-list ]
    dep-list     ::= { '^' spec }
    version-list ::= version [ { ',' version } ]
    version      ::= id | id ':' | ':' id | id ':' id
    compiler     ::= id [ version-list ]
    variant      ::= id
    architecture ::= id
    id           ::= [A-Za-z0-9_][A-Za-z0-9_.-]*

Extensions faithful to the original implementation:

* a spec may be *anonymous* (no leading id) so that ``when='%gcc@5:'`` and
  ``when='@2.4'`` predicates parse;
* ``@:`` parses as the universal version list;
* several whitespace-separated specs may appear in one string
  (:func:`parse_specs` returns them all — ``spack install`` takes a list);
* every ``^dep`` clause attaches to the *root* spec: dependencies are
  unique by name within a DAG (§3.2.3), so nesting is never needed.
"""

import re

from repro.spec import errors as err
from repro.spec.spec import CompilerSpec, Spec
from repro.version import Version, VersionList, VersionRange

__all__ = ["parse_specs", "SpecLexer", "Token"]

#: token kinds
ID, AT, COLON, COMMA, ON, OFF, PCT, EQ, DEP = (
    "ID", "AT", "COLON", "COMMA", "ON", "OFF", "PCT", "EQ", "DEP",
)

_PUNCT = {
    "@": AT,
    ":": COLON,
    ",": COMMA,
    "+": ON,
    "-": OFF,
    "~": OFF,
    "%": PCT,
    "=": EQ,
    "^": DEP,
}

_ID_RE = re.compile(r"[A-Za-z0-9_][A-Za-z0-9_.\-]*")
_WS_RE = re.compile(r"\s+")


class Token:
    """One lexical token: kind, text, and position (for error carets)."""

    __slots__ = ("kind", "value", "pos")

    def __init__(self, kind, value, pos):
        self.kind = kind
        self.value = value
        self.pos = pos

    def __repr__(self):
        return "Token(%s, %r)" % (self.kind, self.value)


class SpecLexer:
    """Tokenize a spec expression.

    ``-`` is an OFF token only at a token boundary; *inside* an id it is
    part of the name (``py-numpy`` is one id, ``mpileaks -debug`` is an id
    plus a disabled variant).  The id regex cannot *start* with ``-``, so
    this falls out of maximal-munch naturally.
    """

    def tokenize(self, text):
        tokens = []
        pos = 0
        n = len(text)
        while pos < n:
            ws = _WS_RE.match(text, pos)
            if ws:
                pos = ws.end()
                continue
            m = _ID_RE.match(text, pos)
            if m:
                tokens.append(Token(ID, m.group(0), pos))
                pos = m.end()
                continue
            ch = text[pos]
            kind = _PUNCT.get(ch)
            if kind is None:
                raise err.SpecParseError(
                    "Unexpected character %r in spec" % ch, text, pos
                )
            tokens.append(Token(kind, ch, pos))
            pos += 1
        return tokens


class SpecParser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, text):
        self.text = text
        self.tokens = SpecLexer().tokenize(text)
        self.pos = 0

    # -- stream helpers -----------------------------------------------------
    def peek(self):
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self):
        tok = self.peek()
        if tok is None:
            raise err.SpecParseError("Unexpected end of spec", self.text, len(self.text))
        self.pos += 1
        return tok

    def accept(self, kind):
        tok = self.peek()
        if tok is not None and tok.kind == kind:
            self.pos += 1
            return tok
        return None

    def expect(self, kind, what):
        tok = self.accept(kind)
        if tok is None:
            bad = self.peek()
            raise err.SpecParseError(
                "Expected %s" % what,
                self.text,
                bad.pos if bad else len(self.text),
            )
        return tok

    # -- grammar rules -------------------------------------------------------
    def parse(self):
        """Parse the whole stream: one or more specs."""
        specs = []
        while self.peek() is not None:
            specs.append(self.parse_spec())
        return specs

    def parse_spec(self):
        spec = Spec()
        tok = self.peek()
        if tok is not None and tok.kind == ID:
            self.next()
            spec.name = tok.value
        elif tok is None or tok.kind == DEP:
            raise err.SpecParseError(
                "Spec must begin with a package name or constraint",
                self.text,
                tok.pos if tok else len(self.text),
            )
        self.parse_constraints(spec)
        while self.accept(DEP):
            dep = Spec()
            dep.name = self.expect(ID, "a dependency name after '^'").value
            self.parse_constraints(dep, in_dep=True)
            try:
                spec._add_dependency(dep)
            except err.DuplicateDependencyError as e:
                raise err.SpecParseError(str(e), self.text, 0)
        return spec

    def parse_constraints(self, spec, in_dep=False):
        """Apply ``@ + - ~ % =`` clauses to ``spec`` until none remain."""
        saw_any = spec.name is not None
        while True:
            if self.accept(AT):
                vlist = self.parse_version_list()
                if not spec.versions.universal and not vlist.universal:
                    raise err.SpecParseError(
                        "Spec cannot have two version lists", self.text, 0
                    )
                spec.versions = vlist
            elif self.accept(ON):
                name = self.expect(ID, "a variant name after '+'").value
                self._set_variant(spec, name, True)
            elif self.accept(OFF):
                name = self.expect(ID, "a variant name after '-'/'~'").value
                self._set_variant(spec, name, False)
            elif self.accept(PCT):
                if spec.compiler is not None:
                    raise err.DuplicateCompilerSpecError(
                        "Spec for %r has two compilers" % spec.name
                    )
                name = self.expect(ID, "a compiler name after '%'").value
                versions = None
                if self.accept(AT):
                    versions = self.parse_version_list()
                spec.compiler = CompilerSpec(name, versions)
            elif self.accept(EQ):
                if spec.architecture is not None:
                    raise err.DuplicateArchitectureError(
                        "Spec for %r has two architectures" % spec.name
                    )
                spec.architecture = self.expect(
                    ID, "an architecture name after '='"
                ).value
            else:
                break
            saw_any = True
        if not saw_any:
            bad = self.peek()
            raise err.SpecParseError(
                "Anonymous spec must have at least one constraint",
                self.text,
                bad.pos if bad else len(self.text),
            )

    def _set_variant(self, spec, name, value):
        if name in spec.variants:
            raise err.DuplicateVariantError(
                "Variant %r appears twice in spec for %r" % (name, spec.name)
            )
        spec.variants[name] = value

    def parse_version_list(self):
        vlist = VersionList()
        vlist.add(self.parse_version())
        while self.accept(COMMA):
            vlist.add(self.parse_version())
        return vlist

    def parse_version(self):
        """``id | id: | :id | id:id | :`` — one version constraint atom."""
        start = self.accept(ID)
        if self.accept(COLON):
            end = self.accept(ID)
            return VersionRange(
                Version(start.value) if start else None,
                Version(end.value) if end else None,
            )
        if start is None:
            bad = self.peek()
            raise err.SpecParseError(
                "Expected a version after '@'",
                self.text,
                bad.pos if bad else len(self.text),
            )
        return Version(start.value)


def parse_specs(text):
    """Parse a string into a list of Specs (one per whitespace-separated
    spec expression)."""
    return SpecParser(text).parse()
