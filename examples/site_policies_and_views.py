#!/usr/bin/env python3
"""Use case: user and site policies (§4.3) — views, preference order,
site package repositories.

Three mechanisms, demonstrated in sequence:

1. **Views** project hash-addressed prefixes into human-readable paths
   (``/opt/mpileaks-2.3-mvapich2``), with conflicts between builds that
   map to the same link resolved by site policy;
2. **compiler_order** flips which build an ambiguous link points to —
   the paper's ``compiler_order = icc,gcc@4.4.7`` example;
3. **Site repositories** layer over the built-in one: a site class
   subclasses the built-in recipe, adds a patched local version, and
   shadows it without touching upstream (§4.3.2).

Run:  python examples/site_policies_and_views.py [workdir]
"""

import os
import sys
import tempfile

from repro import Session, Spec
from repro.directives import version
from repro.fetch.mockweb import mock_checksum
from repro.repo.repository import Repository
from repro.views.view import View, ViewRule


def main():
    workdir = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(prefix="repro-site-")
    session = Session.create(workdir)

    # -- 1. views -----------------------------------------------------------
    print("== installing mpileaks two ways (gcc and intel)")
    session.install("mpileaks %gcc@4.9.2")
    session.install("mpileaks %intel@15.0.1")

    view = View(session, os.path.join(workdir, "view"))
    view.add_rule(ViewRule("/opt/${PACKAGE}-${VERSION}-${MPINAME}", match="mpileaks"))
    links = view.refresh()
    print("== view links (both builds project to ONE link):")
    for link, spec in links.items():
        print("   %s -> %%%s build" % (os.path.relpath(link, view.root), spec.compiler))

    # -- 2. compiler_order flips the winner ------------------------------------
    session.config.update("user", {"preferences": {"compiler_order": ["intel", "gcc"]}})
    winner = next(iter(view.refresh().values()))
    print("== with compiler_order=[intel, gcc]: link -> %s" % winner.compiler)
    assert winner.compiler.name == "intel"

    session.config.update("user", {"preferences": {"compiler_order": ["gcc", "intel"]}})
    winner = next(iter(view.refresh().values()))
    print("== with compiler_order=[gcc, intel]: link -> %s" % winner.compiler)
    assert winner.compiler.name == "gcc"

    # -- 3. a site repository --------------------------------------------------
    print("\n== layering a site repository with a patched local libelf")
    builtin_libelf = session.repo.get_class("libelf")

    class SiteLibelf(builtin_libelf):
        """Site variant: inherits everything, adds an LLNL-local release."""

        version("0.8.13-llnl1", mock_checksum("libelf", "0.8.13-llnl1"))

    site_repo = Repository(namespace="site")
    site_repo.add_class("libelf", SiteLibelf)
    session.add_repo(site_repo)  # earlier repos shadow later ones
    session.seed_web()

    spec, _ = session.install("libelf@0.8.13-llnl1")
    print("   installed %s from namespace %r" % (spec.node_str(),
          session.repo.repo_for("libelf").namespace))

    # builds through the site class, but upstream recipe is untouched
    from repro.version import Version

    assert Version("0.8.13-llnl1") not in builtin_libelf.versions
    print("   built-in recipe untouched: %s" %
          sorted(str(v) for v in builtin_libelf.versions))

    # -- bonus: externals (§4.4) -------------------------------------------------
    print("\n== registering a vendor MPI as external (not built by us)")
    prefix = session.register_external("cray-mpich@7.0.0")
    spec, result = session.install("gerris =cray_xe6 ^cray-mpich")
    print("   gerris linked against external MPI at %s" % prefix)
    assert "cray-mpich" not in result.built_names
    print("\nOK")


if __name__ == "__main__":
    main()
