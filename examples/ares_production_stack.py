#!/usr/bin/env python3
"""Use case: the ARES multi-physics production stack (§4.4).

Concretizes the 47-package ARES DAG, prints its Figure 13 category
breakdown, sweeps part of the Table 3 support matrix (4 configurations ×
several architecture/compiler/MPI combinations), and performs one full
lite-configuration install — including a vendor MPI configured as an
external, as LLNL does on Cray systems.

Run:  python examples/ares_production_stack.py [workdir]
"""

import os
import sys
import tempfile
from collections import Counter

from repro import Session, Spec
from repro.packages import ares


def main():
    workdir = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(prefix="repro-ares-")
    session = Session.create(workdir)

    # -- the DAG (Figure 13) -----------------------------------------------
    concrete = session.concretize(Spec("ares@2015.06 %gcc =linux-x86_64 ^mvapich"))
    nodes = list(concrete.traverse())
    counts = Counter(ares.category_of(n.name) for n in nodes)
    print("== ARES production configuration: %d packages" % len(nodes))
    for category in ("ares", "physics", "math", "utility", "external"):
        members = sorted(n.name for n in nodes if ares.category_of(n.name) == category)
        print("   %-9s (%2d): %s" % (category, counts[category], ", ".join(members)))
    print("   MPI resolved to:  %s" % concrete["mpi"].node_str())
    print("   BLAS resolved to: %s" % concrete["blas"].node_str())

    # -- the support matrix (Table 3) ------------------------------------------
    print("\n== concretizing the Table 3 support matrix")
    total = 0
    for compiler, arch, mpi, configs in ares.SUPPORT_MATRIX:
        row = []
        for letter in configs:
            text = "%s %s %s %s" % (ares.CONFIGS[letter], compiler, arch, mpi)
            session.concretize(Spec(text))
            row.append(letter)
            total += 1
        print("   %-16s %-12s %-12s %s" % (
            compiler, arch.lstrip("="), mpi.lstrip("^"), " ".join(row)))
    print("   -> %d configurations over %d combinations" % (
        total, len(ares.SUPPORT_MATRIX)))

    # -- one full install (lite config, vendor MPI external) --------------------
    print("\n== installing ares@2015.06+lite with an external cray-mpich")
    session.register_external("cray-mpich@7.0.0")
    spec, result = session.install("ares@2015.06+lite %pgi =cray_xe6 ^cray-mpich")
    print("   built %d packages, %d externals" % (
        len(result.built), len(result.externals)))
    slowest = sorted(result.built, key=lambda s: -s.virtual_seconds)[:5]
    print("   slowest builds (model seconds):")
    for stats in slowest:
        print("      %-12s %7.2f" % (stats.spec.name, stats.virtual_seconds))

    from repro.build.loader import ldd

    binary = os.path.join(session.store.layout.path_for_spec(spec), "bin", "ares")
    resolved = ldd(binary, env={})
    print("   ares binary resolves %d libraries with an empty environment" %
          len(resolved))
    print("\nOK")


if __name__ == "__main__":
    main()
