#!/usr/bin/env python3
"""Use case: managing Python installations for application teams (§4.2).

LLNL supported multiple teams wanting different Python stacks with
different configurations.  This example builds a custom interpreter plus
extensions, each in its own prefix (so combinatorial versioning works),
then *activates* a baseline set into the interpreter so users need no
environment settings — including the merge of the conflicting
``easy-install.pth`` metadata file that plain symlinking would refuse.

Run:  python examples/python_stack_management.py [workdir]
"""

import os
import sys
import tempfile

from repro import Session
from repro.extensions.activation import activated_extensions
from repro.extensions.manager import ExtensionManager


def main():
    workdir = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(prefix="repro-py-")
    session = Session.create(workdir)

    print("== building a custom Python stack")
    for request in (
        "python@2.7.9",
        "py-setuptools ^python@2.7.9",
        "py-numpy ^python@2.7.9 ^netlib-blas",
        "py-scipy ^python@2.7.9 ^netlib-blas",
    ):
        spec, result = session.install(request)
        print("   %-14s -> %s" % (spec.name, session.store.layout.path_for_spec(spec)))

    python_spec = session.find("python")[0]
    python_prefix = session.store.layout.path_for_spec(python_spec)
    site = os.path.join(python_prefix, "lib", "site-packages")

    print("\n== interpreter site-packages before activation:")
    print("   %s" % sorted(os.listdir(site)))

    manager = ExtensionManager(session)
    for ext in ("py-setuptools", "py-numpy", "py-scipy"):
        manager.activate(ext)
        print("   activated %s" % ext)

    print("\n== after activation:")
    print("   %s" % sorted(os.listdir(site)))
    print("   easy-install.pth (merged, not conflicting):")
    for line in open(os.path.join(site, "easy-install.pth")):
        print("      %s" % line.strip())

    print("\n== registry (who is active):")
    for name, info in sorted(activated_extensions(python_prefix).items()):
        print("   %-16s %-8s %s" % (name, info["version"], info["prefix"]))

    print("\n== a second team wants a different stack: deactivate scipy,")
    print("   keep numpy — the prefix returns to exactly the smaller state")
    manager.deactivate("py-scipy")
    assert "scipy" not in os.listdir(site)
    assert "numpy" in os.listdir(site)

    installed, active = manager.extensions_of("python")
    print("\n== extensions of python: %d installed, %d active" % (
        len(installed), len(active)))
    for spec in installed:
        marker = "*" if spec.name in active else " "
        print("  %s %s" % (marker, spec.node_str()))
    print("\nOK")


if __name__ == "__main__":
    main()
