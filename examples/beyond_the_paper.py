#!/usr/bin/env python3
"""The paper's §4.5 future work, implemented and demonstrated.

Four features the SC '15 paper planned but did not ship:

1. **Backtracking concretization** — the hwloc conflict the greedy
   algorithm documents as a limitation, solved by provider search;
2. **Compiler-feature dependencies** — ``requires_compiler('cxx@14:')``
   steering compiler selection and rejecting incapable pins;
3. **Architecture descriptions** — per-platform configure args and
   compiler flags factored out of package files;
4. **Lmod hierarchies** — Core/compiler/MPI module trees generated from
   dependency information.

Run:  python examples/beyond_the_paper.py [workdir]
"""

import os
import sys
import tempfile

from repro import Session, Spec
from repro.core.backtracking import BacktrackingConcretizer
from repro.core.concretizer import ConcretizationError
from repro.directives import depends_on, provides, requires_compiler, version
from repro.package.package import Package


def main():
    workdir = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(prefix="repro-next-")
    session = Session.create(workdir)
    repo = session.repo.repos[0]

    # -- 1. backtracking ---------------------------------------------------
    print("== 1. backtracking concretization (the §4.5 hwloc case)")

    @repo.register("hwloc")
    class Hwloc(Package):
        version("1.8", "x")
        version("1.9", "y")

    @repo.register("fastmpi")
    class FastMpi(Package):
        version("1.0", "x")
        provides("netapi")
        depends_on("hwloc@1.8")     # pinned old hwloc

    @repo.register("safempi")
    class SafeMpi(Package):
        version("1.0", "x")
        provides("netapi")
        depends_on("hwloc@1.9")

    @repo.register("simulator")
    class Simulator(Package):
        version("1.0", "x")
        depends_on("hwloc@1.9")
        depends_on("netapi")

    session.config.update(
        "user", {"preferences": {"providers": {"netapi": ["fastmpi", "safempi"]}}}
    )
    session._provider_index = None
    try:
        session.concretize(Spec("simulator"))
        print("   greedy unexpectedly succeeded?!")
    except ConcretizationError as e:
        print("   greedy fails (as §4.5 documents): %s" % e.message[:70])
    bt = BacktrackingConcretizer(
        session.repo, session.provider_index, session.compilers,
        session.config, session.policy,
    )
    solved = bt.concretize(Spec("simulator"))
    print("   backtracking solves it with %s in %d passes\n"
          % (solved["netapi"].name, bt.last_attempts))

    # -- 2. compiler features -------------------------------------------------
    print("== 2. compiler-feature dependencies")
    from repro.fetch.mockweb import mock_checksum

    @repo.register("modern-code")
    class ModernCode(Package):
        url = "https://mock.example.org/modern-code/modern-code-1.0.tar.gz"
        version("1.0", mock_checksum("modern-code", "1.0"))
        requires_compiler("cxx@14:")
        requires_compiler("openmp@4:")

    session.seed_web()
    concrete = session.concretize(Spec("modern-code"))
    print("   requires cxx>=14 and OpenMP>=4 -> chose %s" % concrete.compiler)
    try:
        session.concretize(Spec("modern-code%clang"))   # clang 3.5: no OpenMP
    except Exception as e:
        print("   %%clang correctly rejected: %s\n" % str(e).splitlines()[0][:70])

    # -- 3. architecture descriptions ---------------------------------------------
    print("== 3. architecture descriptions")
    bgq = session.platforms.get("bgq")
    print("   bgq platform: configure %s, xl flags %s"
          % (bgq.configure_args, bgq.flags_for("xl")))
    spec, _ = session.install("libelf =bgq %xl", keep_stage=True)
    import glob
    import json

    # stage dirs are tagged with the spec's dag hash (parallel-build safe)
    (stage,) = glob.glob(
        os.path.join(session.stage_root, "libelf-0.8.13-*stage", "libelf-0.8.13")
    )
    obj = json.load(open(os.path.join(stage, "objs", "unit_000.o.json")))
    print("   object file built with flags: %s (no package changes)\n" % obj["flags"])

    # -- 4. lmod hierarchy -------------------------------------------------------------
    print("== 4. Lmod hierarchy")
    session.install("mpileaks ^mvapich2")
    session.install("mpileaks ^openmpi")
    from repro.modules.lmod import LmodHierarchy

    hierarchy = LmodHierarchy(session)
    hierarchy.refresh()
    for rel in hierarchy.tree():
        if "mpileaks" in rel or "Core" in rel:
            print("   %s" % rel)
    print("\nOK — all four §4.5 extensions working.")


if __name__ == "__main__":
    main()
