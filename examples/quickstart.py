#!/usr/bin/env python3
"""Quickstart: the mpileaks story from the paper, in ten minutes.

Walks the core workflow end to end:

1. create a Session (a self-contained package-management universe);
2. parse spec expressions, from ``mpileaks`` to the full Table 2 row 7;
3. concretize an abstract spec into a fully concrete build DAG;
4. install it (fetch → verify → stage → wrappers → RPATHs → provenance);
5. prove the installed binary resolves its libraries with an *empty*
   environment — the paper's headline build-methodology guarantee;
6. install the same package with a different MPI and watch the dyninst
   sub-DAG get reused (Figure 9).

Run:  python examples/quickstart.py [workdir]
"""

import os
import sys
import tempfile

from repro import Session, Spec
from repro.build.loader import ldd
from repro.spec.explain import explain
from repro.spec.graph import graph_ascii


def main():
    workdir = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(prefix="repro-qs-")
    print("== creating a session under %s" % workdir)
    session = Session.create(workdir)
    print("   %d packages, %d compilers\n" % (
        len(session.repo.all_package_names()), len(session.compilers)))

    # -- 1. specs: say only what you care about ---------------------------
    for text in [
        "mpileaks",
        "mpileaks@1.1.2 %intel@14.1 +debug",
        "mpileaks @1.2:1.4 %gcc@4.7.5 ~debug =bgq ^callpath @1.1 ^openmpi @1.4.7",
    ]:
        print("spec:    %s" % text)
        print("meaning: %s\n" % explain(text))

    # -- 2. concretization: abstract -> concrete --------------------------
    abstract = Spec("mpileaks ^mvapich2@1.9")
    concrete = session.concretize(abstract)
    print("== concretized %r:" % str(abstract))
    print(graph_ascii(concrete), "\n")
    assert concrete.satisfies(abstract, strict=True)

    # -- 3. install --------------------------------------------------------
    print("== installing...")
    spec, result = session.install(concrete)
    for stats in result.built:
        print("   built %-12s (%.2f model-seconds, %d compile units)" % (
            stats.spec.name, stats.virtual_seconds,
            stats.counts.get("compile_units", 0)))
    prefix = session.store.layout.path_for_spec(spec)
    print("   prefix: %s\n" % prefix)

    # -- 4. the RPATH guarantee ---------------------------------------------
    binary = os.path.join(prefix, "bin", "mpileaks")
    resolved = ldd(binary, env={})  # note: EMPTY environment
    print("== ldd with an empty environment:")
    for lib, path in sorted(resolved.items()):
        print("   %-24s => %s" % (lib, path))
    print()

    # -- 5. Figure 9: shared sub-DAGs ----------------------------------------
    print("== installing the same tool with a different MPI...")
    spec2, result2 = session.install("mpileaks ^openmpi")
    print("   rebuilt: %s" % ", ".join(result2.built_names))
    print("   reused:  %s" % ", ".join(result2.reused_names))
    assert spec2["dyninst"].dag_hash() == spec["dyninst"].dag_hash()

    print("\n== everything installed:")
    for s in session.find():
        print("   %s" % s.node_str())
    print("\nOK — see README.md for the full tour.")


if __name__ == "__main__":
    main()
